package rng

import (
	"math"
	"math/bits"
)

// maxGeometric caps Geometric's return value so that extreme (u, p)
// combinations cannot overflow downstream index arithmetic; any caller
// range is exhausted long before this bound.
const maxGeometric = int64(1) << 62

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) sequence, i.e. a sample of the geometric distribution on
// {0, 1, 2, …} with success probability p. It is the skip length of the
// standard O(expected-successes) sparse-sampling loop: instead of testing
// every candidate with probability p, jump Geometric(p)+1 candidates
// ahead. p >= 1 always returns 0; p must be positive.
func (g *Xoshiro256) Geometric(p float64) int64 {
	if p >= 1 {
		return 0
	}
	if p <= 0 {
		panic("rng: Geometric with non-positive p")
	}
	// Inversion: floor(log(1-U) / log(1-p)), with log1p for precision at
	// small p. 1-U is never zero because Float64 is in [0, 1).
	return g.GeometricLog(math.Log1p(-p))
}

// smallBinomialCutoff separates the two Binomial regimes: below it the
// geometric-skip counter (O(n·min(p,1-p)) expected) is cheaper than the
// mode-centered sampler's log-gamma setup.
const smallBinomialCutoff = 256

// largeBinomialCutoff is the trial count beyond which the zig-zag
// sampler is numerically unsafe: Lgamma(n) grows like n·ln(n), so for
// n ≈ 2^36 its ulp is already ~2^-12 and the three-term cancellation in
// the mode pmf stays accurate, while by n ≈ 10^14 the cancellation
// error reaches the exponent, the computed mode pmf collapses to ~0 and
// the sweep degenerates to O(n). Above the cutoff a clamped normal
// approximation (relative error O(1/√n) < 10^-5 there) is used instead.
const largeBinomialCutoff = int64(1) << 36

// Binomial returns a sample of the Binomial(n, p) distribution: the
// number of successes in n independent Bernoulli(p) trials. Small means
// (n·min(p,1-p) below a fixed cutoff) count geometric skips; larger ones
// use an exact mode-centered zig-zag inversion whose expected cost is
// O(√(np(1-p))) — what keeps recursive edge-count splitting over
// billions of edges cheap. The regime choice depends only on (n, p) and
// every path consumes draws as a pure function of the generator state,
// so equal states yield equal samples on every machine.
func (g *Xoshiro256) Binomial(n int64, p float64) int64 {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	q := p
	if q > 0.5 {
		q = 1 - q
	}
	if float64(n)*q <= smallBinomialCutoff {
		if p > 0.5 {
			return n - g.binomialCount(n, 1-p)
		}
		return g.binomialCount(n, p)
	}
	if n > largeBinomialCutoff {
		return g.binomialNormal(n, p)
	}
	return g.binomialZigzag(n, p)
}

// binomialNormal approximates Binomial(n, p) for trial counts beyond
// the zig-zag sampler's numeric range with a clamped rounded normal
// N(np, np(1-p)) via Box–Muller — two uniforms, a pure function of the
// generator state. At n > 2^36 with np(1-p) > smallBinomialCutoff the
// distributional error is far below anything a graph statistic can
// observe.
func (g *Xoshiro256) binomialNormal(n int64, p float64) int64 {
	u1 := 1 - g.Float64() // (0, 1]: keeps the log finite
	u2 := g.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	k := math.Round(float64(n)*p + math.Sqrt(float64(n)*p*(1-p))*z)
	if k < 0 {
		return 0
	}
	if k > float64(n) {
		return n
	}
	return int64(k)
}

// binomialCount counts successes in n trials via geometric skips:
// O(expected successes) draws. Requires 0 < p <= 0.5. The skip
// denominator log1p(-p) is hoisted out of the loop — GeometricLog is
// draw-for-draw identical to Geometric, so the samples are unchanged.
func (g *Xoshiro256) binomialCount(n int64, p float64) int64 {
	log1mP := math.Log1p(-p)
	var k, t int64
	t = -1
	for {
		t += 1 + g.GeometricLog(log1mP)
		if t >= n {
			return k
		}
		k++
	}
}

// binomialZigzag samples Binomial(n, p) exactly with one uniform: the
// pmf is accumulated outward from the mode (mode, mode+1, mode-1, …),
// each term obtained from its neighbor by the pmf ratio recurrence, and
// the first prefix sum exceeding U selects the sample. Reordering the
// pmf does not change the sampled law, and the expected number of terms
// visited is O(σ) = O(√(np(1-p))).
func (g *Xoshiro256) binomialZigzag(n int64, p float64) int64 {
	mode := int64(float64(n+1) * p)
	if mode > n {
		mode = n
	}
	lgN1, _ := math.Lgamma(float64(n + 1))
	lgK1, _ := math.Lgamma(float64(mode + 1))
	lgNK1, _ := math.Lgamma(float64(n - mode + 1))
	pMode := math.Exp(lgN1 - lgK1 - lgNK1 +
		float64(mode)*math.Log(p) + float64(n-mode)*math.Log1p(-p))
	u := g.Float64()
	acc := pMode
	if u < acc {
		return mode
	}
	ratioUp := p / (1 - p)
	down, up := mode, mode
	pDown, pUp := pMode, pMode
	for down > 0 || up < n {
		if up < n {
			pUp *= float64(n-up) / float64(up+1) * ratioUp
			up++
			acc += pUp
			if u < acc {
				return up
			}
		}
		if down > 0 {
			pDown *= float64(down) / float64(n-down+1) / ratioUp
			down--
			acc += pDown
			if u < acc {
				return down
			}
		}
	}
	// The pmf sums to 1 up to rounding; an astronomically unlucky u in
	// the lost tail mass lands on the mode deterministically.
	return mode
}

// UnitUniform fills dst with independent uniform [0, 1) coordinates,
// one Float64 per slot in order — the coordinate sampler of the spatial
// (random geometric) generators, where dst is one point's coordinate
// vector. Consuming exactly len(dst) draws per call keeps a point
// stream's layout a pure function of (generator state, dimension). The
// body is the batched Fill loop (state in registers), draw-for-draw
// identical to len(dst) Float64 calls.
func (g *Xoshiro256) UnitUniform(dst []float64) {
	s0, s1, s2, s3 := g.s[0], g.s[1], g.s[2], g.s[3]
	for i := range dst {
		r := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		dst[i] = float64(r>>11) / (1 << 53)
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// UnitUniform2 fills x and y with n = len(x) uniform [0, 1) points in
// structure-of-arrays layout, drawing in per-point order x[i], y[i] —
// draw-for-draw identical to n two-slot UnitUniform calls on an AoS
// buffer, so a generator switching between the layouts cannot move a
// bit. len(y) must be at least len(x). State stays in registers for the
// whole fill.
func (g *Xoshiro256) UnitUniform2(x, y []float64) {
	y = y[:len(x)]
	s0, s1, s2, s3 := g.s[0], g.s[1], g.s[2], g.s[3]
	for i := range x {
		r := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		x[i] = float64(r>>11) / (1 << 53)

		r = bits.RotateLeft64(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		y[i] = float64(r>>11) / (1 << 53)
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// UnitUniform3 is UnitUniform2 for three coordinate arrays: per-point
// draw order x[i], y[i], z[i], identical to three-slot UnitUniform
// calls per point. len(y) and len(z) must be at least len(x).
func (g *Xoshiro256) UnitUniform3(x, y, z []float64) {
	y = y[:len(x)]
	z = z[:len(x)]
	s0, s1, s2, s3 := g.s[0], g.s[1], g.s[2], g.s[3]
	for i := range x {
		r := bits.RotateLeft64(s1*5, 7) * 9
		t := s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		x[i] = float64(r>>11) / (1 << 53)

		r = bits.RotateLeft64(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		y[i] = float64(r>>11) / (1 << 53)

		r = bits.RotateLeft64(s1*5, 7) * 9
		t = s1 << 17
		s2 ^= s0
		s3 ^= s1
		s1 ^= s2
		s0 ^= s3
		s2 ^= t
		s3 = bits.RotateLeft64(s3, 45)
		z[i] = float64(r>>11) / (1 << 53)
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// HyperbolicRadius returns one sample of the radial law of random
// hyperbolic graphs truncated to a band [rLo, rHi): density ∝ sinh(α·r),
// sampled by CDF inversion — with U uniform in [0, 1),
//
//	r = acosh(cosh(α·rLo) + U·(cosh(α·rHi) − cosh(α·rLo))) / α.
//
// The caller hoists the band constants: coshLo = cosh(α·rLo), span =
// cosh(α·rHi) − cosh(α·rLo), invAlpha = 1/α. Consumes exactly one draw,
// so a point stream's layout stays a pure function of the generator
// state.
func (g *Xoshiro256) HyperbolicRadius(invAlpha, coshLo, span float64) float64 {
	return math.Acosh(coshLo+g.Float64()*span) * invAlpha
}

// NewStream2 returns a generator for a two-level logical stream id, the
// nested analogue of NewStream: first the namespace id (e.g. a model- or
// purpose-specific salt), then the element id (e.g. a chunk index or a
// splitting-tree node). Distinct (namespace, id) pairs yield independent
// streams; the derivation is a pure function of its arguments, which is
// what lets any worker recompute any stream with no communication.
func NewStream2(seed, namespace, id uint64) *Xoshiro256 {
	var g Xoshiro256
	g.ReseedStream2(seed, namespace, id)
	return &g
}

// ReseedStream2 re-initializes g in place to the exact state
// NewStream2(seed, namespace, id) would return — the allocation-free
// form for retracing loops that open a fresh per-element stream on
// every step. Bit-identical state derivation, so callers on byte-pinned
// streams can adopt it without moving a draw.
func (g *Xoshiro256) ReseedStream2(seed, namespace, id uint64) {
	h := Mix64(seed ^ (namespace * 0x9e3779b97f4a7c15) + 0x2545f4914f6cdd1d)
	g.Reseed(Mix64(h ^ (id * 0x9e3779b97f4a7c15) + 0x2545f4914f6cdd1d))
}
