package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 seeded with 1234567, from the
	// public-domain reference implementation by Sebastiano Vigna.
	want := []uint64{
		6457827717110365317,
		3203168211198807973,
		9817491932198370423,
		4593380528125082431,
		16408922859458223821,
	}
	g := NewSplitMix64(1234567)
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Errorf("SplitMix64 output %d = %d, want %d", i, got, w)
		}
	}
}

func TestMix64MatchesSplitMixStep(t *testing.T) {
	// Mix64 is the finalizer: SplitMix64{x}.Next() == Mix64(x + gamma).
	const gamma = 0x9e3779b97f4a7c15
	for _, x := range []uint64{0, 1, 42, 1 << 63, math.MaxUint64} {
		g := SplitMix64{state: x}
		if got, want := g.Next(), Mix64(x+gamma); got != want {
			t.Errorf("Next(%d) = %d, want Mix64 %d", x, got, want)
		}
	}
}

func TestXoshiroDeterminism(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same-seed generators diverged at step %d: %d vs %d", i, x, y)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical outputs out of 100", same)
	}
}

func TestNewStreamIndependence(t *testing.T) {
	s0, s1 := NewStream(7, 0), NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("streams 0 and 1 produced %d identical outputs out of 100", same)
	}
	// Same (seed, id) must reproduce.
	r0, r1 := NewStream(7, 3), NewStream(7, 3)
	for i := 0; i < 100; i++ {
		if r0.Uint64() != r1.Uint64() {
			t.Fatalf("stream (7,3) not reproducible at step %d", i)
		}
	}
}

func TestInt64nRange(t *testing.T) {
	g := New(5)
	for _, n := range []int64{1, 2, 3, 7, 100, 1 << 40} {
		for i := 0; i < 200; i++ {
			v := g.Int64n(n)
			if v < 0 || v >= n {
				t.Fatalf("Int64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestInt64nPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Int64n(0) did not panic")
		}
	}()
	New(1).Int64n(0)
}

func TestInt64nUniformity(t *testing.T) {
	// Chi-squared check over 8 buckets; threshold is generous (p ~ 1e-6).
	g := New(17)
	const buckets, samples = 8, 80000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[g.Int64n(buckets)]++
	}
	expected := float64(samples) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 45 { // df=7, far tail
		t.Errorf("chi-squared = %.1f indicates non-uniform Int64n: %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(23)
	sum := 0.0
	const n = 50000
	for i := 0; i < n; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want about 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	g := New(3)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := g.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	g := New(11)
	const n, trials = 5, 50000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[g.Perm(n)[0]]++
	}
	expected := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-expected) > 5*math.Sqrt(expected) {
			t.Errorf("Perm first element %d appeared %d times, expected about %.0f", i, c, expected)
		}
	}
}

func TestJumpChangesStateButStaysValid(t *testing.T) {
	g := New(42)
	h := New(42)
	h.Jump()
	same := 0
	for i := 0; i < 100; i++ {
		if g.Uint64() == h.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("jumped generator matched original %d/100 times", same)
	}
}

func TestQuickInt64nAlwaysInRange(t *testing.T) {
	f := func(seed uint64, nRaw int64) bool {
		n := nRaw%1000000 + 1
		if n <= 0 {
			n = 1 - n
		}
		if n == 0 {
			n = 1
		}
		g := New(seed)
		for i := 0; i < 20; i++ {
			v := g.Int64n(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	g := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += g.Uint64()
	}
	_ = sink
}

func BenchmarkInt64n(b *testing.B) {
	g := New(1)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += g.Int64n(1000003)
	}
	_ = sink
}
