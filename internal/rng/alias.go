package rng

import (
	"fmt"
	"math"
	"math/bits"
)

// Alias is a Vose alias table over a finite non-negative weight vector:
// Draw returns index i with probability w_i/Σw in O(1) draws and O(1)
// work, after O(n) construction. It is the weighted with-replacement
// sampling primitive — build one table per worker (tables are read-only
// after construction, so concurrent Draws on separate generators are
// safe) and consume it with batched raw draws via Pick.
//
// Construction follows Vose's two-worklist scheme: each bucket i keeps
// an acceptance threshold and an alias; a uniform bucket plus one
// Bernoulli acceptance draw reproduces the weighted law exactly up to
// the fixed-point quantization of the thresholds (2^-53 per bucket,
// the same resolution as a Float64 compare).
type Alias struct {
	prob []uint64 // fixed-point acceptance threshold per bucket (2^53 scale)
	alt  []int32  // alias taken when the acceptance draw fails
}

// maxAliasBuckets bounds the table size so bucket indices fit int32.
const maxAliasBuckets = 1 << 31

// NewAlias builds the alias table for the given weights. Weights must
// be finite and non-negative with a positive sum; zero-weight buckets
// are valid (they are never returned). An empty or all-zero weight
// vector is a construction error: there is no distribution to sample.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("rng: alias table needs at least one weight")
	}
	if n >= maxAliasBuckets {
		return nil, fmt.Errorf("rng: alias table size %d exceeds %d buckets", n, maxAliasBuckets)
	}
	var sum float64
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("rng: alias weight[%d] = %v is not a finite non-negative number", i, w)
		}
		sum += w
	}
	if !(sum > 0) {
		return nil, fmt.Errorf("rng: alias weights sum to %v; need a positive total", sum)
	}
	a := &Alias{prob: make([]uint64, n), alt: make([]int32, n)}
	// Scaled weights s_i = w_i·n/Σw average to 1; buckets below 1 are
	// "small" (they keep their own mass and borrow the rest), buckets
	// above are "large" (they lend mass to smalls until they drop below
	// 1 themselves). Indices are processed in ascending order within
	// each worklist, so the table is a pure function of the weights.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		a.prob[s] = FixedThreshold(scaled[s])
		a.alt[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	// Leftovers (either list) have residual mass 1 up to rounding:
	// accept always, alias to self.
	for _, i := range small {
		a.prob[i] = 1 << 53
		a.alt[i] = i
	}
	for _, i := range large {
		a.prob[i] = 1 << 53
		a.alt[i] = i
	}
	return a, nil
}

// Len returns the number of buckets.
func (a *Alias) Len() int { return len(a.prob) }

// Draw consumes exactly two draws from g — a uniform bucket via the
// unbiased Lemire method and one fixed-point acceptance draw — and
// returns an index distributed by the table's weights.
func (a *Alias) Draw(g *Xoshiro256) int {
	i := g.Int64n(int64(len(a.prob)))
	if g.Below(a.prob[i]) {
		return int(i)
	}
	return int(a.alt[i])
}

// Pick resolves one sample from two caller-supplied raw draws — the
// batched-consumption form for callers that Fill a buffer of uniforms
// and walk it. The bucket comes from the high product bits of u1
// (bias below n·2^-64, the standard fixed-draw-count trade against
// Draw's rejection loop); the acceptance compare is the fixed-point
// Below on u2.
func (a *Alias) Pick(u1, u2 uint64) int {
	i, _ := bits.Mul64(u1, uint64(len(a.prob)))
	if u2>>11 < a.prob[i] {
		return int(i)
	}
	return int(a.alt[i])
}
