package rng

import (
	"math"
	"testing"
)

// TestAliasRejectsDegenerateWeights checks the construction errors: no
// buckets, non-finite or negative entries, and an all-zero total.
func TestAliasRejectsDegenerateWeights(t *testing.T) {
	bad := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, math.NaN()},
		{1, math.Inf(1)},
		{1, -0.5},
	}
	for _, w := range bad {
		if a, err := NewAlias(w); err == nil {
			t.Fatalf("NewAlias(%v) = %v, want error", w, a)
		}
	}
}

// TestAliasSingleBucket checks the one-bucket table: every draw returns
// index 0 and consumes exactly two draws, so batched consumers can rely
// on the fixed draw shape even in the degenerate case.
func TestAliasSingleBucket(t *testing.T) {
	a, err := NewAlias([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	g := New(3)
	for i := 0; i < 100; i++ {
		if got := a.Draw(g); got != 0 {
			t.Fatalf("draw %d: single-bucket table returned %d", i, got)
		}
	}
	if got := a.Pick(0xdeadbeef, 0x12345678); got != 0 {
		t.Fatalf("Pick on single-bucket table returned %d", got)
	}
}

// TestAliasZeroWeightBucketsNeverDrawn checks buckets with weight zero
// are unreachable through both consumption paths.
func TestAliasZeroWeightBucketsNeverDrawn(t *testing.T) {
	a, err := NewAlias([]float64{0, 3, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	g := New(17)
	var us [2]uint64
	for i := 0; i < 50000; i++ {
		if got := a.Draw(g); got == 0 || got == 2 || got == 4 {
			t.Fatalf("draw %d: zero-weight bucket %d drawn", i, got)
		}
		g.Fill(us[:])
		if got := a.Pick(us[0], us[1]); got == 0 || got == 2 || got == 4 {
			t.Fatalf("pick %d: zero-weight bucket %d drawn", i, got)
		}
	}
}

// TestAliasChiSquare draws from tables over several weight shapes —
// uniform, power-law, one dominant bucket, many zero buckets — and
// checks the empirical frequencies against the exact row weights with a
// chi-square test. The 99.9th percentile of chi²_k is about
// k + 6.2·sqrt(k) + 15 for the k ranges used here, so a fixed-seed run
// failing the bound indicates a real bias, not noise.
func TestAliasChiSquare(t *testing.T) {
	shapes := map[string][]float64{
		"uniform":  {1, 1, 1, 1, 1, 1, 1, 1},
		"powerlaw": {512, 128, 32, 8, 2, 1, 1, 1},
		"dominant": {1000, 1, 1, 1},
		"sparse":   {0, 5, 0, 0, 1, 0, 3, 0, 0, 1},
	}
	for name, w := range shapes {
		a, err := NewAlias(w)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, x := range w {
			sum += x
		}
		const draws = 200000
		countDraw := make([]int64, len(w))
		countPick := make([]int64, len(w))
		g := New(2024)
		var us [2]uint64
		for i := 0; i < draws; i++ {
			countDraw[a.Draw(g)]++
			g.Fill(us[:])
			countPick[a.Pick(us[0], us[1])]++
		}
		for path, count := range map[string][]int64{"Draw": countDraw, "Pick": countPick} {
			var chi2 float64
			dof := -1
			for i, x := range w {
				if x == 0 {
					if count[i] != 0 {
						t.Fatalf("%s/%s: zero-weight bucket %d has %d draws", name, path, i, count[i])
					}
					continue
				}
				expect := float64(draws) * x / sum
				d := float64(count[i]) - expect
				chi2 += d * d / expect
				dof++
			}
			if bound := float64(dof) + 6.2*math.Sqrt(float64(dof)) + 15; chi2 > bound {
				t.Errorf("%s/%s: chi² = %v over %d dof exceeds %v", name, path, chi2, dof, bound)
			}
		}
	}
}

// TestAliasDeterministic checks the table is a pure function of the
// weights and the draw sequence a pure function of the generator state.
func TestAliasDeterministic(t *testing.T) {
	w := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	a1, err := NewAlias(w)
	if err != nil {
		t.Fatal(err)
	}
	a2, _ := NewAlias(w)
	g1, g2 := New(77), New(77)
	for i := 0; i < 1000; i++ {
		if x, y := a1.Draw(g1), a2.Draw(g2); x != y {
			t.Fatalf("draw %d: identical tables and states disagree (%d vs %d)", i, x, y)
		}
	}
}

// TestReseedMatchesNew checks Reseed reproduces New's state exactly —
// the property that lets retracing loops drop the per-step allocation
// without moving a draw.
func TestReseedMatchesNew(t *testing.T) {
	var g Xoshiro256
	for _, seed := range []uint64{0, 1, 42, 1<<63 + 12345, ^uint64(0)} {
		g.Reseed(seed)
		if want := New(seed); g.s != want.s {
			t.Fatalf("Reseed(%d) state %v, New gives %v", seed, g.s, want.s)
		}
	}
	// Interleave with draws: Reseed must fully overwrite prior state.
	g.Reseed(5)
	g.Uint64()
	g.Reseed(5)
	if want := New(5); g.s != want.s {
		t.Fatal("Reseed after draws does not reset to the New state")
	}
}

// TestReseedStream2MatchesNewStream2 checks the in-place two-level
// stream derivation is bit-identical to NewStream2.
func TestReseedStream2MatchesNewStream2(t *testing.T) {
	var g Xoshiro256
	cases := [][3]uint64{
		{0, 0, 0},
		{42, 0x636c_7501, 7},
		{^uint64(0), 0x6261_0001, 1 << 40},
		{12345, 99, ^uint64(0)},
	}
	for _, c := range cases {
		g.ReseedStream2(c[0], c[1], c[2])
		if want := NewStream2(c[0], c[1], c[2]); g.s != want.s {
			t.Fatalf("ReseedStream2(%v) state %v, NewStream2 gives %v", c, g.s, want.s)
		}
	}
}
