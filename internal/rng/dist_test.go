package rng

import (
	"math"
	"testing"
)

func TestGeometricBasics(t *testing.T) {
	g := New(3)
	if got := g.Geometric(1); got != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", got)
	}
	if got := g.Geometric(1.5); got != 0 {
		t.Fatalf("Geometric(1.5) = %d, want 0", got)
	}
	for i := 0; i < 10000; i++ {
		if v := g.Geometric(0.3); v < 0 {
			t.Fatalf("Geometric(0.3) = %d < 0", v)
		}
	}
	// A vanishing p with an unlucky uniform must cap, not overflow.
	for i := 0; i < 100; i++ {
		if v := g.Geometric(1e-300); v < 0 || v > maxGeometric {
			t.Fatalf("Geometric(1e-300) = %d out of [0, cap]", v)
		}
	}
}

func TestGeometricPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	New(1).Geometric(0)
}

func TestGeometricMean(t *testing.T) {
	// E[Geometric(p)] = (1-p)/p.
	g := New(11)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		const trials = 20000
		var sum float64
		for i := 0; i < trials; i++ {
			sum += float64(g.Geometric(p))
		}
		mean := sum / trials
		want := (1 - p) / p
		sd := math.Sqrt((1-p)/(p*p)) / math.Sqrt(trials)
		if math.Abs(mean-want) > 6*sd {
			t.Errorf("p=%v: mean = %.3f, want %.3f ± %.3f", p, mean, want, 6*sd)
		}
	}
}

func TestBinomialEdgeCases(t *testing.T) {
	g := New(7)
	if got := g.Binomial(0, 0.5); got != 0 {
		t.Errorf("Binomial(0, .5) = %d", got)
	}
	if got := g.Binomial(10, 0); got != 0 {
		t.Errorf("Binomial(10, 0) = %d", got)
	}
	if got := g.Binomial(10, -1); got != 0 {
		t.Errorf("Binomial(10, -1) = %d", got)
	}
	if got := g.Binomial(10, 1); got != 10 {
		t.Errorf("Binomial(10, 1) = %d", got)
	}
	if got := g.Binomial(10, 2); got != 10 {
		t.Errorf("Binomial(10, 2) = %d", got)
	}
	for i := 0; i < 5000; i++ {
		if v := g.Binomial(20, 0.3); v < 0 || v > 20 {
			t.Fatalf("Binomial(20, .3) = %d out of range", v)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	g := New(19)
	for _, tc := range []struct {
		n int64
		p float64
	}{{100, 0.02}, {1000, 0.5}, {50, 0.9}} {
		const trials = 4000
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			v := float64(g.Binomial(tc.n, tc.p))
			sum += v
			sumSq += v * v
		}
		mean := sum / trials
		wantMean := float64(tc.n) * tc.p
		wantVar := float64(tc.n) * tc.p * (1 - tc.p)
		seMean := math.Sqrt(wantVar / trials)
		if math.Abs(mean-wantMean) > 6*seMean {
			t.Errorf("Binomial(%d, %v): mean = %.2f, want %.2f ± %.2f",
				tc.n, tc.p, mean, wantMean, 6*seMean)
		}
		variance := sumSq/trials - mean*mean
		if variance < wantVar*0.8 || variance > wantVar*1.2 {
			t.Errorf("Binomial(%d, %v): var = %.2f, want ≈ %.2f",
				tc.n, tc.p, variance, wantVar)
		}
	}
}

func TestBinomialDeterministic(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 200; i++ {
		if va, vb := a.Binomial(1000, 0.37), b.Binomial(1000, 0.37); va != vb {
			t.Fatalf("draw %d: %d != %d with equal states", i, va, vb)
		}
	}
}

func TestNewStream2Independence(t *testing.T) {
	// Distinct namespaces and distinct ids must both separate streams;
	// equal triples must reproduce.
	pairs := [][2]*Xoshiro256{
		{NewStream2(7, 1, 0), NewStream2(7, 1, 1)},
		{NewStream2(7, 1, 0), NewStream2(7, 2, 0)},
		{NewStream2(7, 1, 3), NewStream2(8, 1, 3)},
	}
	for pi, pr := range pairs {
		same := 0
		for i := 0; i < 100; i++ {
			if pr[0].Uint64() == pr[1].Uint64() {
				same++
			}
		}
		if same > 0 {
			t.Errorf("pair %d: %d/100 identical outputs", pi, same)
		}
	}
	a, b := NewStream2(42, 9, 9), NewStream2(42, 9, 9)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("equal stream ids diverged at step %d", i)
		}
	}
	// A two-level id must not collapse onto the one-level derivation with
	// the same trailing id (the namespaces are separate).
	c, d := NewStream2(42, 0, 5), NewStream(42, 5)
	same := 0
	for i := 0; i < 100; i++ {
		if c.Uint64() == d.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("NewStream2(seed,0,id) collides with NewStream(seed,id): %d/100", same)
	}
}

// TestBinomialHugeN pins the large-n regression: beyond the zig-zag
// sampler's numeric range the clamped normal branch must return
// instantly (the naive pmf sweep degenerated to O(n) there) with the
// right mean.
func TestBinomialHugeN(t *testing.T) {
	g := New(42)
	const huge = int64(1_000_000_000_000_000)
	for i := 0; i < 50; i++ {
		if v := g.Binomial(huge, 0.5); v < 0 || v > huge {
			t.Fatalf("out of range: %d", v)
		}
	}
	var sum float64
	const trials = 400
	for i := 0; i < trials; i++ {
		sum += float64(g.Binomial(1<<40, 0.25))
	}
	mean := sum / trials
	want := 0.25 * float64(int64(1)<<40)
	if mean < want*0.999 || mean > want*1.001 {
		t.Fatalf("huge-n mean %.0f, want ≈ %.0f", mean, want)
	}
}

func TestUnitUniform(t *testing.T) {
	g := New(9)
	var sum float64
	buf := make([]float64, 3)
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		g.UnitUniform(buf)
		for _, v := range buf {
			if v < 0 || v >= 1 {
				t.Fatalf("coordinate %v outside [0, 1)", v)
			}
			sum += v
		}
	}
	if mean := sum / (3 * rounds); mean < 0.49 || mean > 0.51 {
		t.Errorf("UnitUniform mean %v far from 0.5", mean)
	}
	// Consuming exactly len(dst) draws: interleaving with Float64 must
	// match a straight Float64 sequence.
	a, b := New(4), New(4)
	var got, want [4]float64
	a.UnitUniform(got[:2])
	got[2], got[3] = a.Float64(), a.Float64()
	for i := range want {
		want[i] = b.Float64()
	}
	if got != want {
		t.Errorf("UnitUniform draw layout differs from Float64 sequence: %v != %v", got, want)
	}
}

// TestUnitUniformSoAMatchesScalar pins the draw layout of the
// structure-of-arrays fills: UnitUniform2/3 must produce exactly the
// per-point x, y(, z) order of repeated small UnitUniform calls, so the
// spatial generators' switch from AoS to SoA buffers cannot move a
// sampled bit.
func TestUnitUniformSoAMatchesScalar(t *testing.T) {
	const n = 513 // odd, > any unrolling the fill could use
	for _, dim := range []int{2, 3} {
		a, b := New(77), New(77)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		if dim == 2 {
			a.UnitUniform2(x, y)
		} else {
			a.UnitUniform3(x, y, z)
		}
		pt := make([]float64, dim)
		for i := 0; i < n; i++ {
			b.UnitUniform(pt)
			if x[i] != pt[0] || y[i] != pt[1] {
				t.Fatalf("dim=%d point %d: SoA (%v, %v) != scalar (%v, %v)",
					dim, i, x[i], y[i], pt[0], pt[1])
			}
			if dim == 3 && z[i] != pt[2] {
				t.Fatalf("dim=3 point %d: z %v != scalar %v", i, z[i], pt[2])
			}
		}
		// Final generator state must agree too: downstream draws after a
		// fill must be unaffected by the layout.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("dim=%d: generator state diverged after fill", dim)
		}
	}
}

// TestHyperbolicRadius checks the truncated sinh(α·r) sampler: every
// sample stays in its band [rLo, rHi), the empirical CDF matches the
// analytic (cosh(α·r)−cosh(α·rLo))/span law at interior quantiles, and
// each call consumes exactly one draw.
func TestHyperbolicRadius(t *testing.T) {
	const alpha, rLo, rHi = 0.95, 2.0, 3.5
	coshLo := math.Cosh(alpha * rLo)
	span := math.Cosh(alpha*rHi) - coshLo
	g := New(5)
	const trials = 40000
	samples := make([]float64, trials)
	for i := range samples {
		r := g.HyperbolicRadius(1/alpha, coshLo, span)
		if r < rLo || r >= rHi {
			t.Fatalf("sample %v outside [%v, %v)", r, rLo, rHi)
		}
		samples[i] = r
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		// Analytic quantile: r with F(r) = q.
		rq := math.Acosh(coshLo+q*span) / alpha
		var below float64
		for _, r := range samples {
			if r < rq {
				below++
			}
		}
		emp := below / trials
		sd := math.Sqrt(q * (1 - q) / trials)
		if math.Abs(emp-q) > 6*sd {
			t.Errorf("quantile %v: empirical CDF %.4f, want %.4f ± %.4f", q, emp, q, 6*sd)
		}
	}
	// Exactly one draw per call: two generators from the same seed, one
	// advanced by HyperbolicRadius and one by Float64, must stay in step.
	a, b := New(9), New(9)
	for i := 0; i < 100; i++ {
		a.HyperbolicRadius(1/alpha, coshLo, span)
		b.Float64()
	}
	if a.Uint64() != b.Uint64() {
		t.Error("HyperbolicRadius does not consume exactly one draw")
	}
}
