// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the graph generators.
//
// The package intentionally avoids math/rand so that (a) every generated
// graph is reproducible from a single uint64 seed across Go versions, and
// (b) independent generator streams can be split cheaply for
// communication-free parallel generation (each worker derives its own
// stream from the shared seed and its worker id).
package rng

import "math/bits"

// SplitMix64 is the SplitMix64 generator of Steele, Lea and Flood.
// It passes BigCrush, has a period of 2^64 and is primarily used here to
// seed the larger-state xoshiro generator and to hash worker ids into
// independent stream seeds. The zero value is a valid generator seeded
// with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 is a stateless avalanche of x, the finalizer used by SplitMix64.
// It is used to derive independent stream seeds: Mix64(seed ^ streamID).
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Xoshiro256 is the xoshiro256** generator of Blackman and Vigna: fast,
// 256 bits of state, period 2^256-1. It is the workhorse generator of the
// package.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64, per
// the authors' recommendation. Any seed (including 0) is valid.
func New(seed uint64) *Xoshiro256 {
	var g Xoshiro256
	g.Reseed(seed)
	return &g
}

// Reseed re-initializes g in place to the exact state New(seed) would
// return — the allocation-free form for hot loops that derive a fresh
// stream per element (e.g. per-edge-position hash streams): one value
// generator reseeded per element replaces one heap allocation per
// element, with bit-identical state and therefore bit-identical draws.
func (g *Xoshiro256) Reseed(seed uint64) {
	sm := SplitMix64{state: seed}
	for i := range g.s {
		g.s[i] = sm.Next()
	}
	// The all-zero state is invalid; SplitMix64 cannot emit four
	// consecutive zeros, but guard anyway.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 0x9e3779b97f4a7c15
	}
}

// NewStream returns a generator for logical stream id derived from seed.
// Distinct ids yield (with overwhelming probability) non-overlapping,
// statistically independent streams, enabling communication-free parallel
// generation with per-worker determinism.
func NewStream(seed, id uint64) *Xoshiro256 {
	return New(Mix64(seed ^ (id * 0x9e3779b97f4a7c15) + 0x2545f4914f6cdd1d))
}

// Uint64 returns the next 64 uniform random bits.
func (g *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = bits.RotateLeft64(g.s[3], 45)
	return result
}

// Int64n returns a uniform value in [0, n). It panics if n <= 0.
// It uses Lemire's multiply-shift rejection method, which is unbiased.
func (g *Xoshiro256) Int64n(n int64) int64 {
	if n <= 0 {
		panic("rng: Int64n with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(g.Uint64(), un)
	if lo < un {
		threshold := -un % un
		for lo < threshold {
			hi, lo = bits.Mul64(g.Uint64(), un)
		}
	}
	return int64(hi)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (g *Xoshiro256) Intn(n int) int {
	return int(g.Int64n(int64(n)))
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (g *Xoshiro256) Bool() bool {
	return g.Uint64()&1 == 1
}

// Perm returns a uniform random permutation of [0, n) via Fisher-Yates.
func (g *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := g.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls of
// Uint64. It can be used to split one seed into up to 2^128 parallel
// non-overlapping subsequences.
func (g *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= g.s[0]
				s1 ^= g.s[1]
				s2 ^= g.s[2]
				s3 ^= g.s[3]
			}
			g.Uint64()
		}
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}
