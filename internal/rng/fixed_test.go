package rng

import (
	"math"
	"testing"
)

// thresholdCases spans the full threshold range: the endpoints, exact
// k/2^53 grid points and their float neighbors, subnormal-adjacent
// values, and NaN.
func thresholdCases() []float64 {
	cases := []float64{
		0, 1, -1, 0.5, 0.25, 1.0 / 3, 2.0 / 3, 0.57, 0.76, 0.999999,
		1 - 0x1p-53,               // largest float64 below 1
		0x1p-53, 0x1p-52, 0x1p-60, // grid unit and below
		math.SmallestNonzeroFloat64,              // smallest subnormal
		2 * math.SmallestNonzeroFloat64,          // subnormal-adjacent
		math.Float64frombits(0x000fffffffffffff), // largest subnormal
		0x1p-1022,                                // smallest normal
		math.NaN(),                               // must behave like p <= 0
		math.Nextafter(0.5, 0), math.Nextafter(0.5, 1),
		2, 1.5, math.Inf(1), math.Inf(-1), // out-of-range clamps
	}
	// Exact grid points k/2^53 and their neighbors.
	for _, k := range []uint64{1, 2, 3, 1000, 1 << 30, 1<<53 - 1} {
		p := float64(k) / (1 << 53)
		cases = append(cases, p, math.Nextafter(p, 0), math.Nextafter(p, 2))
	}
	return cases
}

// TestFixedThresholdExact checks the defining property of FixedThreshold
// against the float path directly, without a generator: for every
// representable draw value k, k < FixedThreshold(p) must equal
// float64(k)/2^53 < p.
func TestFixedThresholdExact(t *testing.T) {
	ks := []uint64{0, 1, 2, 3, 1000, 1 << 20, 1 << 30, 1<<52 + 12345, 1<<53 - 2, 1<<53 - 1}
	g := New(99)
	for i := 0; i < 4096; i++ {
		ks = append(ks, g.Uint64()>>11)
	}
	for _, p := range thresholdCases() {
		thr := FixedThreshold(p)
		if thr > 1<<53 {
			t.Fatalf("FixedThreshold(%v) = %d out of [0, 2^53]", p, thr)
		}
		for _, k := range ks {
			want := float64(k)/(1<<53) < p
			if got := k < thr; got != want {
				t.Fatalf("p=%v (thr=%d), k=%d: fixed-point compare %v, float compare %v", p, thr, k, got, want)
			}
		}
	}
}

// TestBelowMatchesFloat64 runs two identically seeded generators side by
// side and checks the decisions AND the consumed state agree draw for
// draw, for every threshold case.
func TestBelowMatchesFloat64(t *testing.T) {
	for _, p := range thresholdCases() {
		thr := FixedThreshold(p)
		gf, gi := New(12345), New(12345)
		for i := 0; i < 2000; i++ {
			want := gf.Float64() < p
			if got := gi.Below(thr); got != want {
				t.Fatalf("p=%v draw %d: Below %v, Float64 compare %v", p, i, got, want)
			}
		}
		if gf.s != gi.s {
			t.Fatalf("p=%v: generator states diverged", p)
		}
	}
}

// TestFillMatchesUint64 checks Fill is draw-for-draw identical to the
// same number of Uint64 calls, including the final state.
func TestFillMatchesUint64(t *testing.T) {
	for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
		ga, gb := New(7), New(7)
		dst := make([]uint64, n)
		ga.Fill(dst)
		for i, got := range dst {
			if want := gb.Uint64(); got != want {
				t.Fatalf("Fill(%d)[%d] = %d, Uint64 sequence gives %d", n, i, got, want)
			}
		}
		if ga.s != gb.s {
			t.Fatalf("Fill(%d): generator states diverged", n)
		}
	}
}

// TestUnitUniformMatchesFloat64 checks the batched UnitUniform body is
// draw-for-draw identical to per-slot Float64 calls.
func TestUnitUniformMatchesFloat64(t *testing.T) {
	ga, gb := New(11), New(11)
	dst := make([]float64, 257)
	ga.UnitUniform(dst)
	for i, got := range dst {
		if want := gb.Float64(); got != want {
			t.Fatalf("UnitUniform[%d] = %v, Float64 sequence gives %v", i, got, want)
		}
	}
	if ga.s != gb.s {
		t.Fatal("generator states diverged")
	}
}

// TestGeometricLogMatchesGeometric checks the hoisted-log variant is
// draw-for-draw identical to Geometric for p across the usable range.
func TestGeometricLogMatchesGeometric(t *testing.T) {
	for _, p := range []float64{1e-12, 1e-6, 0.01, 0.3, 0.5, 0.9, 1 - 0x1p-53} {
		l := math.Log1p(-p)
		ga, gb := New(5), New(5)
		for i := 0; i < 5000; i++ {
			a, b := ga.Geometric(p), gb.GeometricLog(l)
			if a != b {
				t.Fatalf("p=%v draw %d: Geometric %d, GeometricLog %d", p, i, a, b)
			}
		}
	}
}

// TestBinomialFixedLaw sanity-checks BinomialFixed across its three
// regimes: exact edge cases, and sample mean/variance within generous
// bounds of the binomial law.
func TestBinomialFixedLaw(t *testing.T) {
	g := New(2024)
	if got := g.BinomialFixed(100, 0, FixedThreshold(0)); got != 0 {
		t.Fatalf("BinomialFixed(n, p=0) = %d, want 0", got)
	}
	if got := g.BinomialFixed(100, 1, FixedThreshold(1)); got != 100 {
		t.Fatalf("BinomialFixed(n, p=1) = %d, want 100", got)
	}
	if got := g.BinomialFixed(0, 0.5, FixedThreshold(0.5)); got != 0 {
		t.Fatalf("BinomialFixed(0, p) = %d, want 0", got)
	}
	cases := []struct {
		n int64
		p float64
	}{
		{40, 0.24},     // Bernoulli-count regime
		{64, 0.76},     // regime boundary
		{65, 0.76},     // zig-zag regime, just past the cutover
		{5000, 0.19},   // zig-zag regime
		{1 << 37, 0.5}, // normal-approximation regime
	}
	for _, tc := range cases {
		thr := FixedThreshold(tc.p)
		const samples = 20000
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			k := float64(g.BinomialFixed(tc.n, tc.p, thr))
			sum += k
			sumSq += k * k
		}
		mean := sum / samples
		variance := sumSq/samples - mean*mean
		wantMean := float64(tc.n) * tc.p
		wantVar := wantMean * (1 - tc.p)
		// Mean of `samples` iid draws has sd sqrt(wantVar/samples); allow 6 sd.
		if tol := 6 * math.Sqrt(wantVar/samples); math.Abs(mean-wantMean) > tol {
			t.Errorf("BinomialFixed(%d, %v): mean %v, want %v ± %v", tc.n, tc.p, mean, wantMean, tol)
		}
		if variance < 0.8*wantVar || variance > 1.2*wantVar {
			t.Errorf("BinomialFixed(%d, %v): variance %v, want ≈ %v", tc.n, tc.p, variance, wantVar)
		}
	}
}

// TestBinomialFixedSmallRegimeExact cross-checks the Bernoulli-count
// regime against counting Below draws by hand from the same state.
func TestBinomialFixedSmallRegimeExact(t *testing.T) {
	const p = 0.37
	thr := FixedThreshold(p)
	for n := int64(1); n <= smallFixedTrials; n += 7 {
		ga, gb := New(uint64(n)), New(uint64(n))
		got := ga.BinomialFixed(n, p, thr)
		var want int64
		for i := int64(0); i < n; i++ {
			if gb.Below(thr) {
				want++
			}
		}
		if got != want || ga.s != gb.s {
			t.Fatalf("n=%d: BinomialFixed %d (state %v), manual count %d (state %v)", n, got, ga.s, want, gb.s)
		}
	}
}
