package rng

import (
	"math"
	"math/bits"
	"testing"
)

// TestNewStreamBitCorrelation is the statistical smoke test for the
// communication-free sharding contract: generators derived from the same
// seed but different shard ids must look pairwise independent. For
// independent uniform streams, the XOR of paired outputs is itself
// uniform, so across N draws the total popcount of the XORs is
// Binomial(64N, 1/2). Seeds are fixed, so the test is deterministic.
func TestNewStreamBitCorrelation(t *testing.T) {
	ids := []uint64{0, 1, 2, 3, 17, 1 << 20, 1 << 40}
	const draws = 4096
	outs := make([][]uint64, len(ids))
	for i, id := range ids {
		g := NewStream(99, id)
		outs[i] = make([]uint64, draws)
		for k := range outs[i] {
			outs[i][k] = g.Uint64()
		}
	}
	nBits := float64(64 * draws)
	sigma := math.Sqrt(nBits / 4)
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			var diff int64
			for k := 0; k < draws; k++ {
				diff += int64(bits.OnesCount64(outs[i][k] ^ outs[j][k]))
			}
			dev := math.Abs(float64(diff) - nBits/2)
			if dev > 6*sigma {
				t.Errorf("streams %d and %d: differing-bit count %d deviates %.1fσ from %d",
					ids[i], ids[j], diff, dev/sigma, int64(nBits/2))
			}
		}
	}
}

// TestNewStreamChiSquare checks per-stream uniformity of the low byte
// over a few thousand draws with a chi-square statistic: 256 cells,
// 255 degrees of freedom, mean 255 and variance 510 under uniformity.
func TestNewStreamChiSquare(t *testing.T) {
	const draws = 8192
	const cells = 256
	expected := float64(draws) / cells
	for _, id := range []uint64{0, 1, 5, 1 << 33} {
		g := NewStream(1234, id)
		var counts [cells]int
		for i := 0; i < draws; i++ {
			counts[g.Uint64()&0xff]++
		}
		var chi2 float64
		for _, c := range counts {
			d := float64(c) - expected
			chi2 += d * d / expected
		}
		// 255 ± 6·sqrt(510): far beyond any plausible uniform sample.
		if limit := 255 + 6*math.Sqrt(510); chi2 > limit {
			t.Errorf("stream %d: chi-square = %.1f > %.1f", id, chi2, limit)
		}
	}
}

// TestJumpIsLinear verifies the jump's defining algebraic property: the
// xoshiro state transition is linear over GF(2) and Jump applies a fixed
// polynomial in it, so Jump(x ⊕ y) = Jump(x) ⊕ Jump(y) for any states
// x, y. A wrong jump polynomial table or a broken accumulation loop
// cannot satisfy this for random states while also moving the state.
func TestJumpIsLinear(t *testing.T) {
	sm := NewSplitMix64(2024)
	for trial := 0; trial < 20; trial++ {
		var x, y, z Xoshiro256
		for i := 0; i < 4; i++ {
			x.s[i] = sm.Next()
			y.s[i] = sm.Next()
			z.s[i] = x.s[i] ^ y.s[i]
		}
		x.Jump()
		y.Jump()
		z.Jump()
		for i := 0; i < 4; i++ {
			if z.s[i] != x.s[i]^y.s[i] {
				t.Fatalf("trial %d: Jump(x^y).s[%d] != Jump(x).s[%d] ^ Jump(y).s[%d]", trial, i, i, i)
			}
		}
	}
}

// TestJumpSubsequencesDisjoint checks that the pre- and post-jump
// subsequences of one seed do not collide over a window far larger than
// any test run uses, and that jumping is deterministic and progressive
// (two jumps land somewhere new).
func TestJumpSubsequencesDisjoint(t *testing.T) {
	const window = 4096
	base := New(77)
	jumped := New(77)
	jumped.Jump()
	seen := make(map[uint64]struct{}, window)
	for i := 0; i < window; i++ {
		seen[base.Uint64()] = struct{}{}
	}
	for i := 0; i < window; i++ {
		if _, dup := seen[jumped.Uint64()]; dup {
			t.Fatalf("jumped stream revisited a pre-jump value at step %d", i)
		}
	}

	j1, j2 := New(77), New(77)
	j1.Jump()
	j2.Jump()
	if j1.s != j2.s {
		t.Fatal("Jump is not deterministic")
	}
	j2.Jump()
	if j1.s == j2.s {
		t.Fatal("second Jump did not move the state")
	}
	for i := 0; i < 100; i++ {
		if j1.Uint64() == j2.Uint64() {
			t.Fatalf("single- and double-jumped streams agree at step %d", i)
		}
	}
}
