package gio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"kronvalid/internal/csr"
	"kronvalid/internal/graph"
	"kronvalid/internal/stream"
)

// sinkCSR builds a csr.Graph from explicit canonical-order arcs via the
// one-pass accumulator.
func sinkCSR(t *testing.T, n int64, arcs []stream.Arc) *csr.Graph {
	t.Helper()
	s := csr.NewSink(n, int64(len(arcs)))
	if err := s.Consume(arcs); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	g, err := s.Graph()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testCSR(t *testing.T) *csr.Graph {
	return sinkCSR(t, 9, []stream.Arc{
		{U: 0, V: 2}, {U: 0, V: 7},
		{U: 3, V: 0}, {U: 3, V: 3}, {U: 3, V: 8},
		{U: 8, V: 1},
	})
}

func TestCSRRoundTrip(t *testing.T) {
	g := testCSR(t)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("CSR round trip changed the graph")
	}
	if CSRDigest(back) != CSRDigest(g) {
		t.Fatal("CSR round trip changed the digest")
	}
}

func TestCSRRoundTripEmpty(t *testing.T) {
	g := sinkCSR(t, 4, nil)
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("empty CSR round trip changed the graph")
	}
}

// TestReadCSRTruncated chops a valid serialization at every prefix
// length: each must fail with an error wrapping io.ErrUnexpectedEOF, and
// none may return a graph.
func TestReadCSRTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, testCSR(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		g, err := ReadCSR(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes parsed without error: %v", cut, len(data), g)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("prefix of %d bytes: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadCSRRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSR(&buf, testCSR(t)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("bad magic accepted")
	}

	// Out-of-range neighbor in the last arc word.
	bad = append([]byte(nil), data...)
	bad[len(bad)-2] = 0xff
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("out-of-range neighbor accepted")
	}

	// Implausible vertex count.
	bad = append([]byte(nil), data...)
	for i := 8; i < 16; i++ {
		bad[i] = 0xff
	}
	if _, err := ReadCSR(bytes.NewReader(bad)); err == nil {
		t.Fatal("implausible size accepted")
	}
}

// TestReadCSRHugeHeaderDoesNotAllocate: a corrupt header declaring
// near-cap counts over a tiny body must fail on the truncated read —
// allocation is bounded by the bytes actually present, never by the
// header's claim.
func TestReadCSRHugeHeaderDoesNotAllocate(t *testing.T) {
	data := append([]byte(nil), csrMagic[:]...)
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], 1<<47)  // n: plausible per the cap
	binary.LittleEndian.PutUint64(hdr[8:16], 1<<47) // arcs
	data = append(data, hdr[:]...)
	data = append(data, make([]byte, 1024)...) // tiny body
	g, err := ReadCSR(bytes.NewReader(data))
	if err == nil {
		t.Fatalf("huge-header input parsed: %v", g)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("error %v does not wrap io.ErrUnexpectedEOF", err)
	}
}

// TestCSRDigestMatchesGraphDigest pins the compatibility contract: for an
// unlabeled graph that exists in both representations, the CSR digest
// equals the factor digest.
func TestCSRDigestMatchesGraphDigest(t *testing.T) {
	fg := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 3}, {U: 3, V: 3}, {U: 4, V: 0}}, true)
	var arcs []stream.Arc
	fg.EachArc(func(u, v int32) bool {
		arcs = append(arcs, stream.Arc{U: int64(u), V: int64(v)})
		return true
	})
	cg := sinkCSR(t, int64(fg.NumVertices()), arcs)
	if got, want := CSRDigest(cg), GraphDigest(fg); got != want {
		t.Fatalf("CSRDigest = %s, GraphDigest = %s", got, want)
	}
}

func TestCSRDigestDistinguishes(t *testing.T) {
	g1 := sinkCSR(t, 4, []stream.Arc{{U: 0, V: 1}})
	g2 := sinkCSR(t, 4, []stream.Arc{{U: 0, V: 2}})
	g3 := sinkCSR(t, 5, []stream.Arc{{U: 0, V: 1}})
	if CSRDigest(g1) == CSRDigest(g2) || CSRDigest(g1) == CSRDigest(g3) {
		t.Fatal("digest collision on tiny distinct graphs")
	}
	if CSRDigest(g1) != CSRDigest(g1) {
		t.Fatal("digest not deterministic")
	}
}

func TestArcsTextRoundTrip(t *testing.T) {
	arcs := []stream.Arc{{U: 0, V: 5}, {U: 12345678901, V: -3}, {U: 7, V: 7}}
	var buf bytes.Buffer
	w := NewArcTextWriter(&buf)
	if err := w.Consume(arcs); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArcsText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(arcs) {
		t.Fatalf("got %d arcs, want %d", len(back), len(arcs))
	}
	for i := range arcs {
		if back[i] != arcs[i] {
			t.Fatalf("arc %d = %v, want %v", i, back[i], arcs[i])
		}
	}
}

func TestReadArcsTextRejectsGarbage(t *testing.T) {
	for _, in := range []string{"1\n", "a\tb\n", "1\t2\t3\n", "9223372036854775808\t0\n"} {
		if _, err := ReadArcsText(bytes.NewReader([]byte(in))); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
	// Comments and blanks are skipped.
	arcs, err := ReadArcsText(bytes.NewReader([]byte("# header\n\n%x\n1\t2\n")))
	if err != nil || len(arcs) != 1 || arcs[0] != (stream.Arc{U: 1, V: 2}) {
		t.Fatalf("got %v, %v", arcs, err)
	}
}

func TestArcsBinaryRoundTripAndTruncation(t *testing.T) {
	arcs := []stream.Arc{{U: 1, V: 2}, {U: 3, V: 4}, {U: 1 << 40, V: 9}}
	var buf bytes.Buffer
	w := NewArcBinaryWriter(&buf)
	if err := w.Consume(arcs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	back, err := ReadArcsBinary(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := range arcs {
		if back[i] != arcs[i] {
			t.Fatalf("arc %d = %v, want %v", i, back[i], arcs[i])
		}
	}
	for cut := 1; cut < 16; cut++ {
		_, err := ReadArcsBinary(bytes.NewReader(data[:len(data)-cut]))
		if err == nil {
			t.Fatalf("truncation by %d bytes accepted", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation by %d bytes: %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestReadGraphBinaryTruncated chops a valid factor serialization at
// every prefix: no prefix may parse, and every failure must wrap
// io.ErrUnexpectedEOF (the "silently short graph" regression guard).
func TestReadGraphBinaryTruncated(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 2, V: 5}, {U: 5, V: 5}}, true)
	labels := []int32{0, 1, 0, 1, 0, 1}
	for name, gg := range map[string]*graph.Graph{"plain": g, "labeled": g.WithLabels(labels, 2)} {
		var buf bytes.Buffer
		if err := WriteGraphBinary(&buf, gg); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for cut := 0; cut < len(data); cut++ {
			got, err := ReadGraphBinary(bytes.NewReader(data[:cut]))
			if err == nil {
				t.Fatalf("%s: prefix of %d/%d bytes parsed as %v", name, cut, len(data), got)
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("%s: prefix of %d bytes: %v does not wrap io.ErrUnexpectedEOF", name, cut, err)
			}
		}
	}
}
