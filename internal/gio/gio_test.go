package gio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"testing"

	"kronvalid/internal/gen"
	"kronvalid/internal/graph"
	"kronvalid/internal/stream"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := gen.WebGraph(50, 3, 0.5, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, 50, false)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("edge list round trip failed")
	}
}

func TestUndirectedRoundTrip(t *testing.T) {
	g := gen.HubCycle(6)
	var buf bytes.Buffer
	if err := WriteEdgeListUndirected(&buf, g); err != nil {
		t.Fatal(err)
	}
	lines := bytes.Count(buf.Bytes(), []byte("\n"))
	if int64(lines) != g.NumEdgesUndirected() {
		t.Fatalf("wrote %d lines, want %d", lines, g.NumEdgesUndirected())
	}
	back, err := ReadEdgeList(&buf, g.NumVertices(), true)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("undirected round trip failed")
	}
}

func TestReadEdgeListCommentsAndBlank(t *testing.T) {
	in := "# comment\n\n% another\n0\t1\n1 2\n"
	g, err := ReadEdgeList(strings.NewReader(in), 3, true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdgesUndirected() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdgesUndirected())
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{"0\n", "a b\n", "0 x\n", "0 99\n", "-1 0\n"}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), 3, false); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestStatsRoundTrip(t *testing.T) {
	s := GraphStats{Name: "A⊗B", Vertices: 106099381441, Edges: 2731750692060,
		Triangles: 141000000000000, MaxDegree: 12345, Loops: 0}
	var buf bytes.Buffer
	if err := WriteStats(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadStats(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back != s {
		t.Fatalf("round trip: %+v vs %+v", back, s)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	graphs := map[string]func() *graph.Graph{
		"web":      func() *graph.Graph { return gen.WebGraph(200, 3, 0.6, 4) },
		"loops":    func() *graph.Graph { return gen.HubCycle(5).WithAllLoops() },
		"directed": func() *graph.Graph { return gen.Clique(4).DirectedPart() },
		"empty":    func() *graph.Graph { return gen.Path(1) },
		"labeled": func() *graph.Graph {
			g := gen.Clique(6)
			labels := make([]int32, 6)
			for i := range labels {
				labels[i] = int32(i % 3)
			}
			return g.WithLabels(labels, 3)
		},
	}
	for name, build := range graphs {
		t.Run(name, func(t *testing.T) {
			g := build()
			var buf bytes.Buffer
			if err := WriteGraphBinary(&buf, g); err != nil {
				t.Fatal(err)
			}
			back, err := ReadGraphBinary(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(g) {
				t.Fatal("binary round trip failed")
			}
		})
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := gen.HubCycle(4)
	var buf bytes.Buffer
	if err := WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Bad magic.
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadGraphBinary(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated.
	if _, err := ReadGraphBinary(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
	// Corrupt a neighbor id to an out-of-range value.
	bad2 := append([]byte(nil), data...)
	// last 4 bytes of the nbrs block (graph is unlabeled): set huge value
	copy(bad2[len(bad2)-4:], []byte{0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadGraphBinary(bytes.NewReader(bad2)); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestBinaryCompression(t *testing.T) {
	// The abstract's claim in miniature: the binary factor encoding is a
	// tiny fraction of the product's edge-list size.
	g := gen.WebGraph(500, 3, 0.6, 8)
	var buf bytes.Buffer
	if err := WriteGraphBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	productArcs := g.NumArcs() * g.NumArcs() // C = G ⊗ G
	// Each product arc needs >= 10 bytes as text; the factor file must be
	// orders of magnitude smaller.
	if int64(buf.Len())*1000 > productArcs*10 {
		t.Errorf("factor encoding %d bytes vs product ~%d bytes: compression claim fails",
			buf.Len(), productArcs*10)
	}
}

// failAfterWriter errors once n bytes have been accepted, recording how
// many Write calls it saw.
type failAfterWriter struct {
	n      int
	calls  int
	failed bool
}

func (f *failAfterWriter) Write(p []byte) (int, error) {
	f.calls++
	if f.failed || f.n-len(p) < 0 {
		f.failed = true
		return 0, errFull
	}
	f.n -= len(p)
	return len(p), nil
}

var errFull = errors.New("disk full")

func TestWriteEdgeListStopsOnFirstError(t *testing.T) {
	g := gen.WebGraph(2000, 3, 0.5, 2)
	w := &failAfterWriter{n: 1 << 16} // accept one chunk, fail on the second
	err := WriteEdgeList(w, g)
	if !errors.Is(err, errFull) {
		t.Fatalf("err = %v, want errFull", err)
	}
	callsAtFailure := w.calls
	if callsAtFailure > 3 {
		t.Fatalf("iteration continued after write error: %d write calls", w.calls)
	}
	w2 := &failAfterWriter{n: 0}
	if err := WriteEdgeListUndirected(w2, g); !errors.Is(err, errFull) {
		t.Fatalf("undirected err = %v, want errFull", err)
	}
}

func TestArcTextWriterMatchesFprintf(t *testing.T) {
	arcs := []stream.Arc{{U: 0, V: 1}, {U: 42, V: 7}, {U: 1 << 40, V: 3}, {U: -1, V: -9}}
	var got bytes.Buffer
	s := NewArcTextWriter(&got)
	if err := s.Consume(arcs[:2]); err != nil {
		t.Fatal(err)
	}
	if err := s.Consume(arcs[2:]); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	for _, a := range arcs {
		fmt.Fprintf(&want, "%d\t%d\n", a.U, a.V)
	}
	if got.String() != want.String() {
		t.Fatalf("text sink wrote %q, want %q", got.String(), want.String())
	}
}

func TestArcWritersStickyError(t *testing.T) {
	batch := make([]stream.Arc, 100)
	for _, mk := range []func(w *failAfterWriter) stream.Sink{
		func(w *failAfterWriter) stream.Sink { return NewArcTextWriter(w) },
		func(w *failAfterWriter) stream.Sink { return NewArcBinaryWriter(w) },
	} {
		fw := &failAfterWriter{n: 0}
		s := mk(fw)
		if err := s.Consume(batch); !errors.Is(err, errFull) {
			t.Fatalf("first consume: %v", err)
		}
		if err := s.Consume(batch); !errors.Is(err, errFull) {
			t.Fatal("error not sticky")
		}
		if fw.calls != 1 {
			t.Fatalf("writer called %d times after error", fw.calls)
		}
		if err := s.Flush(); !errors.Is(err, errFull) {
			t.Fatal("flush masked the write error")
		}
	}
}

func TestArcBinaryWriterRoundTripBytes(t *testing.T) {
	arcs := []stream.Arc{{U: 1, V: 2}, {U: 1 << 50, V: 77}}
	var buf bytes.Buffer
	s := NewArcBinaryWriter(&buf)
	if err := s.Consume(arcs); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != len(arcs)*16 {
		t.Fatalf("wrote %d bytes, want %d", buf.Len(), len(arcs)*16)
	}
	if got := binary.LittleEndian.Uint64(buf.Bytes()[16:24]); got != 1<<50 {
		t.Fatalf("second arc U = %d", got)
	}
}

func TestGraphDigestDistinguishesStructure(t *testing.T) {
	g1 := gen.WebGraph(64, 3, 0.5, 1)
	g2 := gen.WebGraph(64, 3, 0.5, 2)
	if GraphDigest(g1) != GraphDigest(g1) {
		t.Fatal("digest not deterministic")
	}
	if GraphDigest(g1) == GraphDigest(g2) {
		t.Fatal("different graphs share a digest")
	}
	labels := make([]int32, g1.NumVertices())
	labels[3] = 1
	if GraphDigest(g1) == GraphDigest(g1.WithLabels(labels, 2)) {
		t.Fatal("labeling did not change the digest")
	}
}
