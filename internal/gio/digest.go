package gio

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"strconv"

	"kronvalid/internal/stream"
)

// ArcDigestSink fingerprints a canonical arc stream incrementally with
// exactly the CSRDigest scheme: FNV-1a over (vertices, arcs, packed
// arcs), hex-encoded. Because CSRDigest enumerates a CSR graph in
// canonical (U, V) order — the order every pipeline source emits — the
// streamed digest of a source equals the digest of its materialized CSR
// without ever building the graph. Both counts are hashed up front, so
// the exact arc total must be known at construction (replayable sources
// can count in a first pass).
type ArcDigestSink struct {
	h       hash.Hash64
	scratch [8]byte
	pack32  bool
	want    int64
	seen    int64
	flushed bool
}

// NewArcDigestSink returns a digest sink for a canonical stream over
// vertex ids [0, numVertices) with exactly numArcs arcs.
func NewArcDigestSink(numVertices, numArcs int64) *ArcDigestSink {
	s := &ArcDigestSink{h: fnv.New64a(), pack32: numVertices <= 1<<32, want: numArcs}
	s.put(uint64(numVertices))
	s.put(uint64(numArcs))
	return s
}

func (s *ArcDigestSink) put(v uint64) {
	binary.LittleEndian.PutUint64(s.scratch[:], v)
	s.h.Write(s.scratch[:])
}

// Consume hashes one batch.
func (s *ArcDigestSink) Consume(batch []stream.Arc) error {
	if s.pack32 {
		for _, a := range batch {
			s.put(uint64(uint32(a.U))<<32 | uint64(uint32(a.V)))
		}
	} else {
		for _, a := range batch {
			s.put(uint64(a.U))
			s.put(uint64(a.V))
		}
	}
	s.seen += int64(len(batch))
	return nil
}

// Flush verifies the stream delivered exactly the arc count the digest
// was seeded with — a mismatch would silently change the digest's
// meaning, so it is an error, not a different digest.
func (s *ArcDigestSink) Flush() error {
	if s.seen != s.want {
		return fmt.Errorf("gio: digest stream delivered %d arcs, expected %d", s.seen, s.want)
	}
	s.flushed = true
	return nil
}

// Digest returns the hex digest. Valid only after a successful Flush.
func (s *ArcDigestSink) Digest() (string, error) {
	if !s.flushed {
		return "", fmt.Errorf("gio: Digest() before Flush")
	}
	return strconv.FormatUint(s.h.Sum64(), 16), nil
}
