package gio

import (
	"bytes"
	"encoding/binary"
	"testing"

	"kronvalid/internal/stream"
)

// arcsFromData decodes fuzz bytes into an arc list (16 bytes per arc,
// truncated tail dropped).
func arcsFromData(data []byte) []stream.Arc {
	n := len(data) / 16
	if n > 1<<12 {
		n = 1 << 12
	}
	arcs := make([]stream.Arc, n)
	for i := range arcs {
		arcs[i] = stream.Arc{
			U: int64(binary.LittleEndian.Uint64(data[i*16:])),
			V: int64(binary.LittleEndian.Uint64(data[i*16+8:])),
		}
	}
	return arcs
}

// FuzzArcsRoundTrip drives arbitrary arc lists through both serializers
// and their readers: whatever the writer emits, the reader must
// reproduce exactly.
func FuzzArcsRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 16))
	f.Add(bytes.Repeat([]byte{0xff}, 48))
	seed := make([]byte, 32)
	binary.LittleEndian.PutUint64(seed[0:], 3)
	binary.LittleEndian.PutUint64(seed[8:], 5)
	binary.LittleEndian.PutUint64(seed[16:], 1<<40)
	binary.LittleEndian.PutUint64(seed[24:], uint64(1<<63)) // negative id
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		arcs := arcsFromData(data)

		var text bytes.Buffer
		tw := NewArcTextWriter(&text)
		if err := tw.Consume(arcs); err != nil {
			t.Fatal(err)
		}
		if err := tw.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err := ReadArcsText(&text)
		if err != nil {
			t.Fatalf("text round trip failed to parse: %v", err)
		}
		if len(back) != len(arcs) {
			t.Fatalf("text round trip: %d arcs, want %d", len(back), len(arcs))
		}
		for i := range arcs {
			if back[i] != arcs[i] {
				t.Fatalf("text round trip: arc %d = %v, want %v", i, back[i], arcs[i])
			}
		}

		var bin bytes.Buffer
		bw := NewArcBinaryWriter(&bin)
		if err := bw.Consume(arcs); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		back, err = ReadArcsBinary(&bin)
		if err != nil {
			t.Fatalf("binary round trip failed to parse: %v", err)
		}
		if len(back) != len(arcs) {
			t.Fatalf("binary round trip: %d arcs, want %d", len(back), len(arcs))
		}
		for i := range arcs {
			if back[i] != arcs[i] {
				t.Fatalf("binary round trip: arc %d = %v, want %v", i, back[i], arcs[i])
			}
		}
	})
}

// FuzzReadArcsBinary feeds arbitrary bytes to the binary reader: it must
// either parse cleanly (input length a multiple of 16) or reject, never
// panic, and on success re-serializing must reproduce the input.
func FuzzReadArcsBinary(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(bytes.Repeat([]byte{7}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		arcs, err := ReadArcsBinary(bytes.NewReader(data))
		if len(data)%16 != 0 {
			if err == nil {
				t.Fatalf("partial trailing record accepted (%d bytes)", len(data))
			}
			return
		}
		if err != nil {
			t.Fatalf("aligned input rejected: %v", err)
		}
		var out bytes.Buffer
		w := NewArcBinaryWriter(&out)
		if err := w.Consume(arcs); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("re-serialization differs from input")
		}
	})
}

// FuzzReadArcsText feeds arbitrary text to the text reader: parse or
// reject, never panic; on success re-serializing and re-parsing is a
// fixed point.
func FuzzReadArcsText(f *testing.F) {
	f.Add("")
	f.Add("1\t2\n")
	f.Add("# c\n-9\t9\n")
	f.Add("x y\n")
	f.Fuzz(func(t *testing.T, in string) {
		arcs, err := ReadArcsText(bytes.NewReader([]byte(in)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		w := NewArcTextWriter(&out)
		if err := w.Consume(arcs); err != nil {
			t.Fatal(err)
		}
		again, err := ReadArcsText(&out)
		if err != nil {
			t.Fatalf("canonical form failed to re-parse: %v", err)
		}
		if len(again) != len(arcs) {
			t.Fatalf("re-parse: %d arcs, want %d", len(again), len(arcs))
		}
		for i := range arcs {
			if again[i] != arcs[i] {
				t.Fatalf("re-parse: arc %d = %v, want %v", i, again[i], arcs[i])
			}
		}
	})
}
