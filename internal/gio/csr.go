package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"

	"kronvalid/internal/csr"
)

// Binary CSR format: the materialized product adjacency in one block,
// mmap-friendly and free of per-arc parsing. Layout (little-endian):
//
//	magic   [8]byte  "KRONCSR1"
//	n       uint64   vertices
//	arcs    uint64
//	offsets [n+1]uint64
//	nbrs    [arcs]uint64
//
// Unlike the factor format (KRONFAC1, 32-bit ids) this carries int64
// product vertex ids. Readers reject truncated or corrupt input with
// wrapped errors — a short file must never yield a short graph.

var csrMagic = [8]byte{'K', 'R', 'O', 'N', 'C', 'S', 'R', '1'}

// csrChunk is the number of uint64 words encoded per Write call.
const csrChunk = 1 << 13

// WriteCSR serializes a CSR product graph.
func WriteCSR(w io.Writer, g *csr.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(csrMagic[:]); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumArcs()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	if err := writeUint64s(bw, g.Offsets()); err != nil {
		return err
	}
	if err := writeUint64s(bw, g.Arcs()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeUint64s encodes a slice of int64 words little-endian in chunks,
// avoiding both per-word Write calls and a full-slice shadow buffer.
func writeUint64s(w io.Writer, vals []int64) error {
	buf := make([]byte, 0, csrChunk*8)
	for len(vals) > 0 {
		chunk := vals
		if len(chunk) > csrChunk {
			chunk = chunk[:csrChunk]
		}
		vals = vals[len(chunk):]
		b := buf[:len(chunk)*8]
		for i, v := range chunk {
			binary.LittleEndian.PutUint64(b[i*8:], uint64(v))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// ReadCSR deserializes a product graph written by WriteCSR, validating
// structure (monotone offsets, sorted in-range rows) before returning.
// Truncated input fails with an error wrapping io.ErrUnexpectedEOF.
func ReadCSR(r io.Reader) (*csr.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gio: reading CSR magic: %w", eofAsUnexpected(err))
	}
	if magic != csrMagic {
		return nil, fmt.Errorf("gio: bad CSR magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("gio: truncated CSR header: %w", eofAsUnexpected(err))
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	arcs := binary.LittleEndian.Uint64(hdr[8:16])
	if n > 1<<48 || arcs > 1<<48 {
		return nil, fmt.Errorf("gio: implausible CSR sizes n=%d arcs=%d", n, arcs)
	}
	offsets, err := readUint64s(br, n+1)
	if err != nil {
		return nil, fmt.Errorf("gio: truncated CSR offsets: %w", err)
	}
	nbrs, err := readUint64s(br, arcs)
	if err != nil {
		return nil, fmt.Errorf("gio: truncated CSR arcs: %w", err)
	}
	g, err := csr.New(offsets, nbrs)
	if err != nil {
		return nil, fmt.Errorf("gio: corrupt CSR: %w", err)
	}
	return g, nil
}

// readUint64s decodes count little-endian words, chunked. The output
// grows with the bytes actually read rather than being pre-sized from
// count, so a corrupt header declaring petabyte counts fails on the
// truncated read instead of aborting the process in make().
func readUint64s(r io.Reader, count uint64) ([]int64, error) {
	capHint := count
	if capHint > csrChunk {
		capHint = csrChunk
	}
	out := make([]int64, 0, capHint)
	buf := make([]byte, csrChunk*8)
	for done := uint64(0); done < count; {
		chunk := count - done
		if chunk > csrChunk {
			chunk = csrChunk
		}
		b := buf[:chunk*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return nil, eofAsUnexpected(err)
		}
		for i := uint64(0); i < chunk; i++ {
			out = append(out, int64(binary.LittleEndian.Uint64(b[i*8:])))
		}
		done += chunk
	}
	return out, nil
}

// eofAsUnexpected normalizes a clean io.EOF in the middle of a fixed-size
// structure to io.ErrUnexpectedEOF, so every truncation satisfies
// errors.Is(err, io.ErrUnexpectedEOF).
func eofAsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// CSRDigest returns a short stable fingerprint of a CSR product graph:
// FNV-1a over the canonical arc stream, hex-encoded — the same scheme as
// GraphDigest, so for an unlabeled graph that exists in both
// representations the two digests are equal whenever every vertex id
// fits in 32 bits (GraphDigest packs each arc into one 64-bit word).
// Larger products hash each endpoint as its own word.
func CSRDigest(g *csr.Graph) string {
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	put(uint64(g.NumVertices()))
	put(uint64(g.NumArcs()))
	if g.NumVertices() <= 1<<32 {
		g.EachArc(func(u, v int64) bool {
			put(uint64(uint32(u))<<32 | uint64(uint32(v)))
			return true
		})
	} else {
		g.EachArc(func(u, v int64) bool {
			put(uint64(u))
			put(uint64(v))
			return true
		})
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
