// Package gio reads and writes graphs and statistics records in simple
// line-oriented formats: tab-separated edge lists (the lingua franca of
// graph benchmarks) and JSON stat summaries.
package gio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"kronvalid/internal/graph"
)

// WriteEdgeList writes every arc as "u\tv\n". For undirected graphs each
// edge appears in both orientations (matching adjacency storage); use
// WriteEdgeListUndirected for one line per edge.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	return writePairs(w, g.EachArc)
}

// WriteEdgeListUndirected writes one "u\tv" line per undirected edge
// (u <= v). Panics if g is not symmetric.
func WriteEdgeListUndirected(w io.Writer, g *graph.Graph) error {
	return writePairs(w, g.EachEdgeUndirected)
}

// writePairs renders "u\tv\n" lines with strconv.AppendInt into a reused
// buffer, flushing in 64 KiB chunks. Iteration stops on the first write
// error, which is returned as-is: the final flush of buffered lines only
// happens on the error-free path, so it can never mask a mid-stream error.
func writePairs(w io.Writer, each func(fn func(u, v int32) bool)) error {
	buf := make([]byte, 0, 1<<16)
	var err error
	each(func(u, v int32) bool {
		buf = strconv.AppendInt(buf, int64(u), 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, int64(v), 10)
		buf = append(buf, '\n')
		if len(buf) >= 1<<16-64 {
			_, err = w.Write(buf)
			buf = buf[:0]
		}
		return err == nil
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadEdgeList parses "u<sep>v" lines (tab or spaces), ignoring blank
// lines and lines starting with '#' or '%'. Vertices must be in [0, n).
// If symmetrize is true the result is the undirected closure.
func ReadEdgeList(r io.Reader, n int, symmetrize bool) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var edges []graph.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("gio: line %d: want two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("gio: line %d: %v", lineNo, err)
		}
		if u < 0 || u >= int64(n) || v < 0 || v >= int64(n) {
			return nil, fmt.Errorf("gio: line %d: vertex out of range [0,%d)", lineNo, n)
		}
		edges = append(edges, graph.Edge{U: int32(u), V: int32(v)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return graph.FromEdges(n, edges, symmetrize), nil
}

// GraphStats is the JSON-serializable summary the CLIs emit: the §VI
// table row for one matrix.
type GraphStats struct {
	Name      string `json:"name"`
	Vertices  int64  `json:"vertices"`
	Edges     int64  `json:"edges"`
	Loops     int64  `json:"loops"`
	Triangles int64  `json:"triangles"`
	MaxDegree int64  `json:"max_degree"`
}

// WriteStats writes a JSON stats record.
func WriteStats(w io.Writer, s GraphStats) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadStats parses a JSON stats record.
func ReadStats(r io.Reader) (GraphStats, error) {
	var s GraphStats
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
