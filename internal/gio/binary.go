package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"kronvalid/internal/graph"
)

// Binary factor format: the abstract's point that a trillion-edge product
// is "easy to share in compressed form" because only the factors travel.
// Layout (little-endian):
//
//	magic   [8]byte  "KRONFAC1"
//	n       uint32   vertices
//	nLabels uint32   0 if unlabeled
//	arcs    uint64
//	offsets [n+1]uint64
//	nbrs    [arcs]uint32
//	labels  [n]uint32 (present only when nLabels > 0)
//
// A few hundred MB of factor data describes a product with ~10^18 edges.

var binaryMagic = [8]byte{'K', 'R', 'O', 'N', 'F', 'A', 'C', '1'}

// WriteGraphBinary serializes a factor graph.
func WriteGraphBinary(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	n := g.NumVertices()
	hdr := []uint32{uint32(n), uint32(g.NumLabels())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(g.NumArcs())); err != nil {
		return err
	}
	offset := uint64(0)
	if err := binary.Write(bw, binary.LittleEndian, offset); err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		offset += uint64(g.OutDegreeRaw(int32(v)))
		if err := binary.Write(bw, binary.LittleEndian, offset); err != nil {
			return err
		}
	}
	var werr error
	g.EachArc(func(u, v int32) bool {
		werr = binary.Write(bw, binary.LittleEndian, uint32(v))
		return werr == nil
	})
	if werr != nil {
		return werr
	}
	if g.IsLabeled() {
		for _, l := range g.Labels() {
			if err := binary.Write(bw, binary.LittleEndian, uint32(l)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadGraphBinary deserializes a factor graph written by WriteGraphBinary.
func ReadGraphBinary(r io.Reader) (*graph.Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gio: reading magic: %w", eofAsUnexpected(err))
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("gio: bad magic %q", magic)
	}
	var n, nLabels uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("gio: truncated header (vertex count): %w", eofAsUnexpected(err))
	}
	if err := binary.Read(br, binary.LittleEndian, &nLabels); err != nil {
		return nil, fmt.Errorf("gio: truncated header (label count): %w", eofAsUnexpected(err))
	}
	var arcs uint64
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, fmt.Errorf("gio: truncated header (arc count): %w", eofAsUnexpected(err))
	}
	if n > (1<<31-1) || arcs > (1<<40) {
		return nil, fmt.Errorf("gio: implausible sizes n=%d arcs=%d", n, arcs)
	}
	offsets := make([]uint64, n+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("gio: truncated offsets: %w", eofAsUnexpected(err))
	}
	if offsets[0] != 0 || offsets[n] != arcs {
		return nil, fmt.Errorf("gio: corrupt offsets")
	}
	nbrs := make([]uint32, arcs)
	if err := binary.Read(br, binary.LittleEndian, nbrs); err != nil {
		return nil, fmt.Errorf("gio: truncated adjacency: %w", eofAsUnexpected(err))
	}
	edges := make([]graph.Edge, 0, arcs)
	for u := uint32(0); u < n; u++ {
		if offsets[u] > offsets[u+1] {
			return nil, fmt.Errorf("gio: non-monotone offsets at %d", u)
		}
		for k := offsets[u]; k < offsets[u+1]; k++ {
			if nbrs[k] >= n {
				return nil, fmt.Errorf("gio: neighbor %d out of range", nbrs[k])
			}
			edges = append(edges, graph.Edge{U: int32(u), V: int32(nbrs[k])})
		}
	}
	g := graph.FromEdges(int(n), edges, false)
	if nLabels > 0 {
		labels := make([]uint32, n)
		if err := binary.Read(br, binary.LittleEndian, labels); err != nil {
			return nil, fmt.Errorf("gio: truncated labels: %w", eofAsUnexpected(err))
		}
		l32 := make([]int32, n)
		for i, l := range labels {
			if l >= nLabels {
				return nil, fmt.Errorf("gio: label %d out of range [0,%d)", l, nLabels)
			}
			l32[i] = int32(l)
		}
		g = g.WithLabels(l32, int(nLabels))
	}
	return g, nil
}
