package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"kronvalid/internal/graph"
	"kronvalid/internal/stream"
)

// ArcTextWriter is a stream.Sink that serializes arc batches as "u\tv\n"
// lines. Each batch is rendered with strconv.AppendInt into one reused
// byte buffer and written with a single Write call — no per-arc Fprintf,
// no per-arc syscalls. A write error stops the stream (Consume keeps
// returning it) and is never masked by a later Flush.
type ArcTextWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewArcTextWriter returns a text sink writing to w.
func NewArcTextWriter(w io.Writer) *ArcTextWriter {
	return &ArcTextWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

// Consume renders and writes one batch.
func (t *ArcTextWriter) Consume(batch []stream.Arc) error {
	if t.err != nil {
		return t.err
	}
	buf := t.buf[:0]
	for _, a := range batch {
		buf = strconv.AppendInt(buf, a.U, 10)
		buf = append(buf, '\t')
		buf = strconv.AppendInt(buf, a.V, 10)
		buf = append(buf, '\n')
	}
	t.buf = buf[:0]
	if _, err := t.w.Write(buf); err != nil {
		t.err = err
		return err
	}
	return nil
}

// Flush reports any earlier write error; all data is written eagerly.
func (t *ArcTextWriter) Flush() error { return t.err }

// ArcBinaryWriter is a stream.Sink that serializes arc batches as
// little-endian (uint64, uint64) pairs, 16 bytes per arc — the compact
// format large-scale harnesses ingest. One Write call per batch.
type ArcBinaryWriter struct {
	w   io.Writer
	buf []byte
	err error
}

// NewArcBinaryWriter returns a binary sink writing to w.
func NewArcBinaryWriter(w io.Writer) *ArcBinaryWriter {
	return &ArcBinaryWriter{w: w}
}

// Consume encodes and writes one batch.
func (b *ArcBinaryWriter) Consume(batch []stream.Arc) error {
	if b.err != nil {
		return b.err
	}
	need := len(batch) * 16
	if cap(b.buf) < need {
		b.buf = make([]byte, need)
	}
	buf := b.buf[:need]
	for i, a := range batch {
		binary.LittleEndian.PutUint64(buf[i*16:], uint64(a.U))
		binary.LittleEndian.PutUint64(buf[i*16+8:], uint64(a.V))
	}
	if _, err := b.w.Write(buf); err != nil {
		b.err = err
		return err
	}
	return nil
}

// Flush reports any earlier write error; all data is written eagerly.
func (b *ArcBinaryWriter) Flush() error { return b.err }

// ReadArcsText parses "u<sep>v" lines (tab or spaces) written by
// ArcTextWriter back into arcs, ignoring blank lines and lines starting
// with '#' or '%'. It is the inverse of the text sink for any int64
// vertex ids (no range restriction — the caller knows its vertex space).
func ReadArcsText(r io.Reader) ([]stream.Arc, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []stream.Arc
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("gio: arcs line %d: want two fields, got %q", lineNo, line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: arcs line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("gio: arcs line %d: %w", lineNo, err)
		}
		out = append(out, stream.Arc{U: u, V: v})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gio: reading arcs: %w", err)
	}
	return out, nil
}

// ReadArcsBinary parses little-endian (uint64, uint64) arc records
// written by ArcBinaryWriter. A trailing partial record is a truncation
// error (wrapping io.ErrUnexpectedEOF), never a silently short list.
func ReadArcsBinary(r io.Reader) ([]stream.Arc, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var out []stream.Arc
	var buf [16]byte
	for {
		_, err := io.ReadFull(br, buf[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("gio: truncated arc record %d: %w", len(out), eofAsUnexpected(err))
		}
		out = append(out, stream.Arc{
			U: int64(binary.LittleEndian.Uint64(buf[0:8])),
			V: int64(binary.LittleEndian.Uint64(buf[8:16])),
		})
	}
}

// GraphDigest returns a short stable fingerprint of a factor graph's
// structure (vertex count, adjacency, labels): FNV-1a over the canonical
// arc stream, hex-encoded. Shard manifests record the factors' digests so
// a reader can verify it regenerates from the same factors.
func GraphDigest(g *graph.Graph) string {
	h := fnv.New64a()
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		h.Write(scratch[:])
	}
	put(uint64(g.NumVertices()))
	put(uint64(g.NumArcs()))
	g.EachArc(func(u, v int32) bool {
		put(uint64(uint32(u))<<32 | uint64(uint32(v)))
		return true
	})
	if g.IsLabeled() {
		put(uint64(g.NumLabels()))
		for _, l := range g.Labels() {
			put(uint64(uint32(l)))
		}
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
