// Package census classifies and counts the *types* of triangles that
// vertices and edges participate in, for directed graphs (the paper's
// Figs. 4 and 5, Defs. 10 and 11) and vertex-labeled graphs (Fig. 6,
// Defs. 13 and 14).
//
// Every census exists in two independent implementations:
//
//   - an *algebraic* one, evaluating the paper's matrix formulas
//     (diag(A_d A_r A_d^t) and friends) with the sparse kernels, and
//   - an *enumerative* one, walking every triangle once and classifying
//     it combinatorially.
//
// The two are cross-validated in tests, which pins down the orientation
// conventions once and for all.
//
// Orientation convention: A[i][j] = 1 means arc i → j. The paper's
// figures use the opposite (column-to-row) convention, so our type NAMES
// correspond to the paper's with the roles 's' (source) and 't' (target)
// exchanged; the 15-type taxonomy, the alias structure, and every
// Kronecker theorem are identical.
package census

import "fmt"

// Role is the relationship of a central vertex to one incident edge of a
// triangle.
type Role int8

const (
	// RoleSource: the central vertex points at the neighbor (v → x only).
	RoleSource Role = iota
	// RoleUndirected: the edge is reciprocal (v ↔ x).
	RoleUndirected
	// RoleTarget: the neighbor points at the central vertex (x → v only).
	RoleTarget
)

func (r Role) String() string {
	switch r {
	case RoleSource:
		return "s"
	case RoleUndirected:
		return "u"
	case RoleTarget:
		return "t"
	}
	return "?"
}

// Dir is the orientation of a non-central triangle edge relative to the
// listed order of its endpoints.
type Dir int8

const (
	// DirForward: first listed endpoint → second (x → y only).
	DirForward Dir = iota
	// DirUndirected: reciprocal.
	DirUndirected
	// DirBackward: second listed endpoint → first (y → x only).
	DirBackward
)

func (d Dir) String() string {
	switch d {
	case DirForward:
		return "+"
	case DirUndirected:
		return "o"
	case DirBackward:
		return "-"
	}
	return "?"
}

func (d Dir) flip() Dir {
	switch d {
	case DirForward:
		return DirBackward
	case DirBackward:
		return DirForward
	}
	return DirUndirected
}

// VertexType is one of the 15 canonical directed-triangle types from a
// vertex's perspective (Fig. 4): the roles of the central vertex on its
// two incident edges plus the direction of the opposite edge.
type VertexType int8

// The 15 canonical vertex types. Aliases (e.g. "ss-" ≡ "ss+", "ts+" ≡
// "st-") are canonicalized by CanonicalVertexType.
const (
	SSp VertexType = iota // ss+ : v→x, v→y, x→y
	SSo                   // sso : v→x, v→y, x↔y
	SUp                   // su+ : v→x, v↔y, x→y
	SUo                   // suo : v→x, v↔y, x↔y
	SUm                   // su- : v→x, v↔y, y→x
	STp                   // st+ : v→x, y→v, x→y (directed 3-cycle)
	STo                   // sto : v→x, y→v, x↔y
	STm                   // st- : v→x, y→v, y→x
	UUp                   // uu+ : v↔x, v↔y, x→y
	UUo                   // uuo : v↔x, v↔y, x↔y (fully reciprocal)
	UTp                   // ut+ : v↔x, y→v, x→y
	UTo                   // uto : v↔x, y→v, x↔y
	UTm                   // ut- : v↔x, y→v, y→x
	TTp                   // tt+ : x→v, y→v, x→y
	TTo                   // tto : x→v, y→v, x↔y
	NumVertexTypes
)

var vertexTypeNames = [NumVertexTypes]string{
	"ss+", "sso", "su+", "suo", "su-", "st+", "sto", "st-",
	"uu+", "uuo", "ut+", "uto", "ut-", "tt+", "tto",
}

func (t VertexType) String() string {
	if t < 0 || t >= NumVertexTypes {
		return fmt.Sprintf("VertexType(%d)", int(t))
	}
	return vertexTypeNames[t]
}

// AllVertexTypes lists the canonical vertex types in order.
func AllVertexTypes() []VertexType {
	out := make([]VertexType, NumVertexTypes)
	for i := range out {
		out[i] = VertexType(i)
	}
	return out
}

// CanonicalVertexType maps an arbitrary (role, role, dir) reading of a
// triangle from its central vertex to the canonical 15-type taxonomy,
// applying the symmetry (r1, r2, d) ≡ (r2, r1, flip(d)).
func CanonicalVertexType(r1, r2 Role, d Dir) VertexType {
	if r1 > r2 || (r1 == r2 && d == DirBackward) {
		r1, r2 = r2, r1
		d = d.flip()
	}
	switch {
	case r1 == RoleSource && r2 == RoleSource:
		if d == DirUndirected {
			return SSo
		}
		return SSp
	case r1 == RoleSource && r2 == RoleUndirected:
		switch d {
		case DirForward:
			return SUp
		case DirUndirected:
			return SUo
		default:
			return SUm
		}
	case r1 == RoleSource && r2 == RoleTarget:
		switch d {
		case DirForward:
			return STp
		case DirUndirected:
			return STo
		default:
			return STm
		}
	case r1 == RoleUndirected && r2 == RoleUndirected:
		if d == DirUndirected {
			return UUo
		}
		return UUp
	case r1 == RoleUndirected && r2 == RoleTarget:
		switch d {
		case DirForward:
			return UTp
		case DirUndirected:
			return UTo
		default:
			return UTm
		}
	default: // tt
		if d == DirUndirected {
			return TTo
		}
		return TTp
	}
}

// EdgeType is one of the 15 canonical directed-triangle types from an
// edge's perspective (Fig. 5): whether the central arc (i,j) is directed
// ('+') or reciprocal ('o'), plus the orientations of the edge i—w
// (read from i) and the edge w—j (read toward j).
type EdgeType int8

// The 15 canonical edge types. For a reciprocal central edge the reading
// from the opposite arc is the mirror type; mirrors that are not
// canonical (o--, oo+, oo-) are accounted at the opposite arc (see
// CanonicalEdgeReading).
const (
	Ppp EdgeType = iota // +++ : i→j, i→w, w→j
	Ppm                 // ++- : i→j, i→w, j→w
	Ppo                 // ++o : i→j, i→w, w↔j
	Pmp                 // +-+ : i→j, w→i, w→j
	Pmm                 // +-- : i→j, w→i, j→w
	Pmo                 // +-o : i→j, w→i, w↔j
	Pop                 // +o+ : i→j, i↔w, w→j
	Pom                 // +o- : i→j, i↔w, j→w
	Poo                 // +oo : i→j, i↔w, w↔j
	Opp                 // o++ : i↔j, i→w, w→j
	Opm                 // o+- : i↔j, i→w, j→w
	Opo                 // o+o : i↔j, i→w, w↔j
	Omp                 // o-+ : i↔j, w→i, w→j
	Omo                 // o-o : i↔j, w→i, w↔j
	Ooo                 // ooo : fully reciprocal
	NumEdgeTypes
)

var edgeTypeNames = [NumEdgeTypes]string{
	"+++", "++-", "++o", "+-+", "+--", "+-o", "+o+", "+o-", "+oo",
	"o++", "o+-", "o+o", "o-+", "o-o", "ooo",
}

func (t EdgeType) String() string {
	if t < 0 || t >= NumEdgeTypes {
		return fmt.Sprintf("EdgeType(%d)", int(t))
	}
	return edgeTypeNames[t]
}

// AllEdgeTypes lists the canonical edge types in order.
func AllEdgeTypes() []EdgeType {
	out := make([]EdgeType, NumEdgeTypes)
	for i := range out {
		out[i] = EdgeType(i)
	}
	return out
}

// CanonicalEdgeReading maps a raw reading (central directed?, d1, d2) of a
// triangle from the arc (i,j) to its canonical type, reporting whether the
// reading should be recorded at this arc (true) or is the mirror of a
// canonical reading recorded at the opposite arc (false). Directed central
// arcs always record; reciprocal central arcs record unless the reading is
// one of the non-canonical mirrors o--, oo+, oo-.
func CanonicalEdgeReading(centralDirected bool, d1, d2 Dir) (EdgeType, bool) {
	if centralDirected {
		return EdgeType(3*int(dirIdx(d1)) + int(dirIdx(d2))), true
	}
	switch {
	case d1 == DirForward && d2 == DirForward:
		return Opp, true
	case d1 == DirForward && d2 == DirBackward:
		return Opm, true
	case d1 == DirForward && d2 == DirUndirected:
		return Opo, true
	case d1 == DirBackward && d2 == DirForward:
		return Omp, true
	case d1 == DirBackward && d2 == DirUndirected:
		return Omo, true
	case d1 == DirUndirected && d2 == DirUndirected:
		return Ooo, true
	case d1 == DirBackward && d2 == DirBackward:
		return Opp, false // mirror of o++ at the opposite arc
	case d1 == DirUndirected && d2 == DirForward:
		return Omo, false // mirror of o-o
	default: // d1 == DirUndirected && d2 == DirBackward
		return Opo, false // mirror of o+o
	}
}

// dirIdx orders +, -, o as 0, 1, 2 to match the Ppp..Poo block layout.
func dirIdx(d Dir) int {
	switch d {
	case DirForward:
		return 0
	case DirBackward:
		return 1
	default:
		return 2
	}
}
