package census

import (
	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

// VertexCensus holds per-vertex counts of every directed triangle type.
type VertexCensus struct {
	// Counts[t][v] is the number of type-t triangles centered at v.
	Counts [NumVertexTypes][]int64
}

// At returns the count of type t at vertex v.
func (c *VertexCensus) At(t VertexType, v int32) int64 { return c.Counts[t][v] }

// TotalPerVertex returns the sum over all types at each vertex, which
// equals the undirected triangle participation t_{A_u}.
func (c *VertexCensus) TotalPerVertex() []int64 {
	out := make([]int64, len(c.Counts[0]))
	for _, vec := range c.Counts {
		for v, x := range vec {
			out[v] += x
		}
	}
	return out
}

// EdgeCensus holds per-edge counts of every directed triangle type.
type EdgeCensus struct {
	// Delta[t] is the sparse count matrix for type t: for central-'+'
	// types the support lies in A_d; for central-'o' types in A_r, with
	// mirror readings accounted at the opposite arc.
	Delta [NumEdgeTypes]*sparse.Matrix
}

// At returns the count of type t at arc (i, j).
func (c *EdgeCensus) At(t EdgeType, i, j int32) int64 {
	return c.Delta[t].At(int(i), int(j))
}

// dirParts returns A_d, A_r and transposes for the loop-free version of g.
func dirParts(g *graph.Graph) (ad, ar, adt *sparse.Matrix) {
	work := g.WithoutLoops()
	adg := work.DirectedPart()
	arg := work.ReciprocalPart()
	ad = adg.ToSparse()
	ar = arg.ToSparse()
	return ad, ar, ad.T()
}

// DirectedVertexCensus computes the 15 per-vertex type counts using the
// paper's Def. 10 matrix formulas (in this library's orientation
// convention). Self loops are ignored.
func DirectedVertexCensus(g *graph.Graph) *VertexCensus {
	ad, ar, adt := dirParts(g)
	half := func(v []int64) []int64 {
		out := make([]int64, len(v))
		for i, x := range v {
			if x%2 != 0 {
				panic("census: odd count in halved vertex type")
			}
			out[i] = x / 2
		}
		return out
	}
	var c VertexCensus
	c.Counts[SSp] = sparse.Diag3(ad, ad, adt)
	c.Counts[SSo] = half(sparse.Diag3(ad, ar, adt))
	c.Counts[SUp] = sparse.Diag3(ad, ad, ar)
	c.Counts[SUo] = sparse.Diag3(ad, ar, ar)
	c.Counts[SUm] = sparse.Diag3(ad, adt, ar)
	c.Counts[STp] = sparse.Diag3(ad, ad, ad)
	c.Counts[STo] = sparse.Diag3(ad, ar, ad)
	c.Counts[STm] = sparse.Diag3(ad, adt, ad)
	c.Counts[UUp] = sparse.Diag3(ar, ad, ar)
	c.Counts[UUo] = half(sparse.Diag3(ar, ar, ar))
	c.Counts[UTp] = sparse.Diag3(ar, ad, ad)
	c.Counts[UTo] = sparse.Diag3(ar, ar, ad)
	c.Counts[UTm] = sparse.Diag3(ar, adt, ad)
	c.Counts[TTp] = sparse.Diag3(adt, ad, ad)
	c.Counts[TTo] = half(sparse.Diag3(adt, ar, ad))
	return &c
}

// DirectedVertexCensusEnum computes the same counts by enumerating every
// triangle of the undirected version once and classifying it from each of
// its three vertices. It is the combinatorial reference implementation.
func DirectedVertexCensusEnum(g *graph.Graph) *VertexCensus {
	work := g.WithoutLoops()
	n := work.NumVertices()
	var c VertexCensus
	for t := range c.Counts {
		c.Counts[t] = make([]int64, n)
	}
	role := func(v, x int32) Role {
		fwd, bwd := work.HasEdge(v, x), work.HasEdge(x, v)
		switch {
		case fwd && bwd:
			return RoleUndirected
		case fwd:
			return RoleSource
		default:
			return RoleTarget
		}
	}
	dirOf := func(x, y int32) Dir {
		fwd, bwd := work.HasEdge(x, y), work.HasEdge(y, x)
		switch {
		case fwd && bwd:
			return DirUndirected
		case fwd:
			return DirForward
		default:
			return DirBackward
		}
	}
	triangle.EachTriangle(work, func(u, v, w int32) {
		for _, p := range [3][3]int32{{u, v, w}, {v, u, w}, {w, u, v}} {
			center, x, y := p[0], p[1], p[2]
			t := CanonicalVertexType(role(center, x), role(center, y), dirOf(x, y))
			c.Counts[t][center]++
		}
	})
	return &c
}

// DirectedEdgeCensus computes the 15 per-edge type count matrices using
// the Def. 11 formulas: Δ(c,d1,d2) = M_c ∘ (X_{d1} · Y_{d2}) with
// M_+ = A_d, M_o = A_r, X/Y ∈ {A_d, A_d^t, A_r}. Self loops are ignored.
func DirectedEdgeCensus(g *graph.Graph) *EdgeCensus {
	ad, ar, adt := dirParts(g)
	x := func(d Dir) *sparse.Matrix {
		switch d {
		case DirForward:
			return ad
		case DirBackward:
			return adt
		default:
			return ar
		}
	}
	// Y_{d2} at (w, j): '+' means w→j (A_d), '-' means j→w (A_d^t),
	// 'o' reciprocal.
	y := x
	var c EdgeCensus
	for _, t := range AllEdgeTypes() {
		central, d1, d2 := edgeTypeParts(t)
		m := ar
		if central {
			m = ad
		}
		c.Delta[t] = m.Hadamard(x(d1).Mul(y(d2)))
	}
	return &c
}

// edgeTypeParts decomposes a canonical edge type into (centralDirected,
// d1, d2).
func edgeTypeParts(t EdgeType) (centralDirected bool, d1, d2 Dir) {
	dirAt := func(b byte) Dir {
		switch b {
		case '+':
			return DirForward
		case '-':
			return DirBackward
		default:
			return DirUndirected
		}
	}
	name := edgeTypeNames[t]
	return name[0] == '+', dirAt(name[1]), dirAt(name[2])
}

// arcCounts accumulates per-arc tallies in a slice aligned with a
// graph's CSR arc order — the flat-array replacement for the
// map[[2]int32]int64 the enumeration censuses used to rebuild per call.
// Memory is 4·NumArcs bytes per instantiated type (int32 suffices for
// per-arc triangle counts at the validation scales these reference
// implementations run at), traded against hash lookups on every record.
type arcCounts struct {
	g      *graph.Graph
	counts []int32
}

func newArcCounts(g *graph.Graph) *arcCounts {
	return &arcCounts{g: g, counts: make([]int32, g.NumArcs())}
}

// inc bumps the count of arc (i, j), which must exist in g.
func (c *arcCounts) inc(i, j int32) { c.counts[c.g.ArcIndex(i, j)]++ }

// matrix renders the nonzero counts as a sparse matrix, visiting arcs in
// canonical CSR order.
func (c *arcCounts) matrix() *sparse.Matrix {
	n := c.g.NumVertices()
	var ts []sparse.Triplet
	idx := 0
	c.g.EachArc(func(u, v int32) bool {
		if x := c.counts[idx]; x != 0 {
			ts = append(ts, sparse.Triplet{Row: int(u), Col: int(v), Val: int64(x)})
		}
		idx++
		return true
	})
	return sparse.FromTriplets(n, n, ts)
}

// DirectedEdgeCensusEnum computes the edge census by triangle enumeration
// and per-arc classification, the combinatorial reference.
func DirectedEdgeCensusEnum(g *graph.Graph) *EdgeCensus {
	work := g.WithoutLoops()
	counts := make([]*arcCounts, NumEdgeTypes)
	for t := range counts {
		counts[t] = newArcCounts(work)
	}
	dirOf := func(x, y int32) Dir {
		fwd, bwd := work.HasEdge(x, y), work.HasEdge(y, x)
		switch {
		case fwd && bwd:
			return DirUndirected
		case fwd:
			return DirForward
		default:
			return DirBackward
		}
	}
	record := func(i, j, w int32) {
		// Reading of the triangle {i, j, w} from arc (i, j).
		central := dirOf(i, j)
		if central == DirBackward {
			return // arc (i,j) does not exist; handled from (j,i)
		}
		d1 := dirOf(i, w)
		d2 := dirOf(w, j)
		t, here := CanonicalEdgeReading(central == DirForward, d1, d2)
		if here {
			counts[t].inc(i, j)
		}
	}
	triangle.EachTriangle(work, func(u, v, w int32) {
		// Each unordered edge of the triangle, read from both arcs.
		record(u, v, w)
		record(v, u, w)
		record(u, w, v)
		record(w, u, v)
		record(v, w, u)
		record(w, v, u)
	})
	var c EdgeCensus
	for t := range counts {
		c.Delta[t] = counts[t].matrix()
	}
	return &c
}
