package census

import (
	"testing"
	"testing/quick"

	"kronvalid/internal/graph"
	"kronvalid/internal/rng"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

// randomDirected builds a random directed graph with a tunable mix of
// reciprocal and one-way edges.
func randomDirected(g *rng.Xoshiro256, n int, avgDeg, reciprocity float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n))
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: u, V: v})
		if g.Float64() < reciprocity {
			edges = append(edges, graph.Edge{U: v, V: u})
		}
	}
	return graph.FromEdges(n, edges, false)
}

func randomUndirected(g *rng.Xoshiro256, n int, avgDeg float64) *graph.Graph {
	var edges []graph.Edge
	target := int(avgDeg * float64(n) / 2)
	for i := 0; i < target; i++ {
		u, v := int32(g.Intn(n)), int32(g.Intn(n))
		if u != v {
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	return graph.FromEdges(n, edges, true)
}

func TestVertexCensusAlgebraMatchesEnum(t *testing.T) {
	g := rng.New(71)
	for trial := 0; trial < 20; trial++ {
		gr := randomDirected(g, 5+g.Intn(30), 4, 0.4)
		alg := DirectedVertexCensus(gr)
		enum := DirectedVertexCensusEnum(gr)
		for _, ty := range AllVertexTypes() {
			if !sparse.EqualVec(alg.Counts[ty], enum.Counts[ty]) {
				t.Fatalf("trial %d type %v: algebra %v vs enum %v",
					trial, ty, alg.Counts[ty], enum.Counts[ty])
			}
		}
	}
}

func TestVertexCensusSumsToUndirectedParticipation(t *testing.T) {
	g := rng.New(72)
	for trial := 0; trial < 15; trial++ {
		gr := randomDirected(g, 5+g.Intn(30), 5, 0.3)
		c := DirectedVertexCensus(gr)
		tu := triangle.Count(gr.Undirected()).PerVertex
		if !sparse.EqualVec(c.TotalPerVertex(), tu) {
			t.Fatalf("trial %d: census totals %v != undirected participation %v",
				trial, c.TotalPerVertex(), tu)
		}
	}
}

func TestVertexCensusDirectedThreeCycle(t *testing.T) {
	// 0→1→2→0: the canonical st+ (directed 3-cycle) at every vertex.
	gr := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, false)
	c := DirectedVertexCensus(gr)
	for _, ty := range AllVertexTypes() {
		want := int64(0)
		if ty == STp {
			want = 1
		}
		for v := int32(0); v < 3; v++ {
			if got := c.At(ty, v); got != want {
				t.Errorf("type %v at %d = %d, want %d", ty, v, got, want)
			}
		}
	}
}

func TestVertexCensusFullyReciprocalTriangle(t *testing.T) {
	gr := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, true)
	c := DirectedVertexCensus(gr)
	for _, ty := range AllVertexTypes() {
		want := int64(0)
		if ty == UUo {
			want = 1
		}
		for v := int32(0); v < 3; v++ {
			if got := c.At(ty, v); got != want {
				t.Errorf("type %v at %d = %d, want %d", ty, v, got, want)
			}
		}
	}
}

func TestVertexCensusMixedTriangle(t *testing.T) {
	// 0↔1, 1→2, 0→2: center 0 reads (u on 0-1, s on 0-2, third 1→2 '+')
	// = us+ ≡ su- after canonicalization? Verified: both orderings map
	// through CanonicalVertexType; we simply assert algebra == enum and
	// the full type multiset.
	gr := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 0}, {U: 1, V: 2}, {U: 0, V: 2}}, false)
	alg := DirectedVertexCensus(gr)
	enum := DirectedVertexCensusEnum(gr)
	totalTypes := 0
	for _, ty := range AllVertexTypes() {
		if !sparse.EqualVec(alg.Counts[ty], enum.Counts[ty]) {
			t.Fatalf("type %v: %v vs %v", ty, alg.Counts[ty], enum.Counts[ty])
		}
		totalTypes += int(sparse.SumVec(alg.Counts[ty]))
	}
	if totalTypes != 3 { // one triangle seen from three vertices
		t.Errorf("total classified = %d, want 3", totalTypes)
	}
}

func TestEdgeCensusAlgebraMatchesEnum(t *testing.T) {
	g := rng.New(73)
	for trial := 0; trial < 20; trial++ {
		gr := randomDirected(g, 5+g.Intn(25), 4, 0.4)
		alg := DirectedEdgeCensus(gr)
		enum := DirectedEdgeCensusEnum(gr)
		for _, ty := range AllEdgeTypes() {
			if !alg.Delta[ty].Equal(enum.Delta[ty]) {
				t.Fatalf("trial %d type %v:\nalgebra\n%v\nenum\n%v",
					trial, ty, alg.Delta[ty], enum.Delta[ty])
			}
		}
	}
}

func TestEdgeCensusUndirectedReducesToDelta(t *testing.T) {
	g := rng.New(74)
	for trial := 0; trial < 10; trial++ {
		gr := randomUndirected(g, 5+g.Intn(30), 5)
		c := DirectedEdgeCensus(gr)
		want := triangle.Count(gr).EdgeDelta
		if !c.Delta[Ooo].Equal(want) {
			t.Fatalf("trial %d: Δ(ooo) != Δ_A", trial)
		}
		for _, ty := range AllEdgeTypes() {
			if ty != Ooo && c.Delta[ty].NNZ() != 0 {
				t.Fatalf("trial %d: undirected graph has nonzero %v census", trial, ty)
			}
		}
	}
}

func TestEdgeCensusDirectedThreeCycle(t *testing.T) {
	gr := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}}, false)
	c := DirectedEdgeCensus(gr)
	for _, ty := range AllEdgeTypes() {
		want := int64(0)
		if ty == Pmm {
			want = 3 // each arc reads the cycle as +--
		}
		if got := c.Delta[ty].Total(); got != want {
			t.Errorf("type %v total = %d, want %d", ty, got, want)
		}
	}
}

func TestEdgeCensusSupportsLieInCorrectParts(t *testing.T) {
	g := rng.New(75)
	gr := randomDirected(g, 30, 5, 0.5)
	work := gr.WithoutLoops()
	ad := work.DirectedPart().ToSparse()
	ar := work.ReciprocalPart().ToSparse()
	c := DirectedEdgeCensus(gr)
	for _, ty := range AllEdgeTypes() {
		central, _, _ := edgeTypeParts(ty)
		mask := ar
		if central {
			mask = ad
		}
		// Every nonzero of the census must sit on a mask arc.
		ok := true
		c.Delta[ty].Each(func(r, cc int, v int64) bool {
			if mask.At(r, cc) == 0 {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			t.Errorf("type %v has counts off its central part", ty)
		}
	}
}

func TestCanonicalVertexTypeAliases(t *testing.T) {
	cases := []struct {
		r1, r2 Role
		d      Dir
		want   VertexType
	}{
		{RoleSource, RoleSource, DirBackward, SSp},    // ss- ≡ ss+
		{RoleUndirected, RoleSource, DirForward, SUm}, // us+ ≡ su-
		{RoleUndirected, RoleSource, DirUndirected, SUo},
		{RoleTarget, RoleSource, DirForward, STm}, // ts+ ≡ st-
		{RoleTarget, RoleSource, DirUndirected, STo},
		{RoleTarget, RoleUndirected, DirForward, UTm}, // tu+ ≡ ut-
		{RoleTarget, RoleTarget, DirBackward, TTp},    // tt- ≡ tt+
		{RoleUndirected, RoleUndirected, DirBackward, UUp},
	}
	for _, c := range cases {
		if got := CanonicalVertexType(c.r1, c.r2, c.d); got != c.want {
			t.Errorf("Canonical(%v,%v,%v) = %v, want %v", c.r1, c.r2, c.d, got, c.want)
		}
	}
}

func TestCanonicalEdgeReadingMirrors(t *testing.T) {
	// The three non-canonical reciprocal readings defer to the mirror arc.
	if ty, here := CanonicalEdgeReading(false, DirBackward, DirBackward); ty != Opp || here {
		t.Error("o-- should defer to o++ at mirror arc")
	}
	if ty, here := CanonicalEdgeReading(false, DirUndirected, DirForward); ty != Omo || here {
		t.Error("oo+ should defer to o-o at mirror arc")
	}
	if ty, here := CanonicalEdgeReading(false, DirUndirected, DirBackward); ty != Opo || here {
		t.Error("oo- should defer to o+o at mirror arc")
	}
	// Self-mirror readings record on both arcs.
	for _, d := range []struct{ d1, d2 Dir }{
		{DirForward, DirBackward}, {DirBackward, DirForward}, {DirUndirected, DirUndirected},
	} {
		if _, here := CanonicalEdgeReading(false, d.d1, d.d2); !here {
			t.Errorf("(o,%v,%v) should record at its own arc", d.d1, d.d2)
		}
	}
}

func TestTypeStringsDistinct(t *testing.T) {
	seenV := map[string]bool{}
	for _, ty := range AllVertexTypes() {
		s := ty.String()
		if seenV[s] {
			t.Errorf("duplicate vertex type name %q", s)
		}
		seenV[s] = true
	}
	seenE := map[string]bool{}
	for _, ty := range AllEdgeTypes() {
		s := ty.String()
		if seenE[s] {
			t.Errorf("duplicate edge type name %q", s)
		}
		seenE[s] = true
	}
}

func TestQuickCensusAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		g := rng.New(seed)
		gr := randomDirected(g, 4+g.Intn(15), 3, g.Float64())
		alg := DirectedVertexCensus(gr)
		enum := DirectedVertexCensusEnum(gr)
		for _, ty := range AllVertexTypes() {
			if !sparse.EqualVec(alg.Counts[ty], enum.Counts[ty]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// ---- labeled census ----

func randomLabeled(g *rng.Xoshiro256, n, L int, avgDeg float64) *graph.Graph {
	gr := randomUndirected(g, n, avgDeg)
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(g.Intn(L))
	}
	return gr.WithLabels(labels, L)
}

func TestLabeledVertexCensusMatchesEnum(t *testing.T) {
	g := rng.New(81)
	for trial := 0; trial < 15; trial++ {
		gr := randomLabeled(g, 5+g.Intn(25), 1+g.Intn(4), 5)
		alg := LabeledVertexCensus(gr)
		enum := LabeledVertexCensusEnum(gr)
		for _, ty := range AllLabelVertexTypes(gr.NumLabels()) {
			if !sparse.EqualVec(alg[ty], enum[ty]) {
				t.Fatalf("trial %d type %v: %v vs %v", trial, ty, alg[ty], enum[ty])
			}
		}
	}
}

func TestLabeledVertexCensusSumsToUnlabeled(t *testing.T) {
	g := rng.New(82)
	for trial := 0; trial < 10; trial++ {
		gr := randomLabeled(g, 5+g.Intn(25), 3, 5)
		alg := LabeledVertexCensus(gr)
		sum := make([]int64, gr.NumVertices())
		for _, vec := range alg {
			for v, x := range vec {
				sum[v] += x
			}
		}
		want := triangle.Count(gr).PerVertex
		if !sparse.EqualVec(sum, want) {
			t.Fatalf("trial %d: labeled sums %v != t_A %v", trial, sum, want)
		}
	}
}

func TestLabeledEdgeCensusMatchesEnum(t *testing.T) {
	g := rng.New(83)
	for trial := 0; trial < 15; trial++ {
		gr := randomLabeled(g, 5+g.Intn(20), 1+g.Intn(3), 4)
		alg := LabeledEdgeCensus(gr)
		enum := LabeledEdgeCensusEnum(gr)
		for _, ty := range AllLabelEdgeTypes(gr.NumLabels()) {
			if !alg[ty].Equal(enum[ty]) {
				t.Fatalf("trial %d type %v:\n%v\nvs\n%v", trial, ty, alg[ty], enum[ty])
			}
		}
	}
}

func TestLabeledEdgeCensusSumsToDelta(t *testing.T) {
	g := rng.New(84)
	gr := randomLabeled(g, 25, 3, 5)
	alg := LabeledEdgeCensus(gr)
	sum := sparse.New(gr.NumVertices(), gr.NumVertices())
	for _, m := range alg {
		sum = sum.Add(m)
	}
	want := triangle.Count(gr).EdgeDelta
	if !sum.Equal(want) {
		t.Fatal("labeled edge census does not sum to Δ_A")
	}
}

func TestLabeledSingleColorReducesToPlainCensus(t *testing.T) {
	g := rng.New(85)
	gr := randomLabeled(g, 20, 1, 5)
	alg := LabeledVertexCensus(gr)
	only := alg[LabelVertexType{0, 0, 0}]
	want := triangle.Count(gr).PerVertex
	if !sparse.EqualVec(only, want) {
		t.Fatal("single-label census != t_A")
	}
}

func TestLabeledThreeColorTriangle(t *testing.T) {
	// One triangle with labels 0,1,2: center sees type (own|other two).
	gr := graph.FromEdges(3, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}}, true).WithLabels([]int32{0, 1, 2}, 3)
	alg := LabeledVertexCensus(gr)
	if alg[NewLabelVertexType(0, 1, 2)][0] != 1 {
		t.Error("center 0 should see (0|1,2)")
	}
	if alg[NewLabelVertexType(1, 0, 2)][1] != 1 {
		t.Error("center 1 should see (1|0,2)")
	}
	if alg[NewLabelVertexType(2, 0, 1)][2] != 1 {
		t.Error("center 2 should see (2|0,1)")
	}
	// No other nonzero counts.
	var total int64
	for _, vec := range alg {
		total += sparse.SumVec(vec)
	}
	if total != 3 {
		t.Errorf("total labeled counts = %d, want 3", total)
	}
}

func TestLabeledCensusPanicsOnUnlabeled(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LabeledVertexCensus(graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, true))
}
