package census

import (
	"fmt"

	"kronvalid/internal/graph"
	"kronvalid/internal/sparse"
	"kronvalid/internal/triangle"
)

// LabelVertexType identifies a labeled triangle from a vertex's
// perspective (Fig. 6): the central vertex's label Q1 and the unordered
// pair of labels {Q2, Q3} (stored with Q2 <= Q3) of the other two
// vertices. For |L| labels there are |L| * C(|L|+1, 2) such types.
type LabelVertexType struct {
	Q1, Q2, Q3 int32
}

func (t LabelVertexType) String() string {
	return fmt.Sprintf("(%d|%d,%d)", t.Q1, t.Q2, t.Q3)
}

// NewLabelVertexType canonicalizes the unordered pair.
func NewLabelVertexType(q1, q2, q3 int32) LabelVertexType {
	if q2 > q3 {
		q2, q3 = q3, q2
	}
	return LabelVertexType{q1, q2, q3}
}

// LabelEdgeType identifies a labeled triangle from an edge's perspective:
// the arc (i, j) has row-end label Q2 = f(i), column-end label Q1 = f(j),
// and the opposite vertex has label Q3 (Def. 14: Δ^(q1,q2,q3) =
// (Π_q2 A Π_q1) ∘ (A Π_q3 A)). For an edge with given endpoint labels
// there are |L| types, one per Q3.
type LabelEdgeType struct {
	Q1, Q2, Q3 int32
}

func (t LabelEdgeType) String() string {
	return fmt.Sprintf("(%d<-%d|%d)", t.Q1, t.Q2, t.Q3)
}

// AllLabelVertexTypes enumerates the canonical vertex types for a label
// set of size L.
func AllLabelVertexTypes(L int) []LabelVertexType {
	var out []LabelVertexType
	for q1 := int32(0); q1 < int32(L); q1++ {
		for q2 := int32(0); q2 < int32(L); q2++ {
			for q3 := q2; q3 < int32(L); q3++ {
				out = append(out, LabelVertexType{q1, q2, q3})
			}
		}
	}
	return out
}

// AllLabelEdgeTypes enumerates the edge types for a label set of size L.
func AllLabelEdgeTypes(L int) []LabelEdgeType {
	var out []LabelEdgeType
	for q1 := int32(0); q1 < int32(L); q1++ {
		for q2 := int32(0); q2 < int32(L); q2++ {
			for q3 := int32(0); q3 < int32(L); q3++ {
				out = append(out, LabelEdgeType{q1, q2, q3})
			}
		}
	}
	return out
}

// LabeledVertexCensus computes per-vertex counts of every labeled
// triangle type via the Def. 13 formulas:
//
//	t^(q1,q2,q3) = diag(Π_q1 A Π_q3 A Π_q2 A Π_q1)        (q2 != q3)
//	t^(q1,q2,q2) = ½ diag(Π_q1 A Π_q2 A Π_q2 A Π_q1)
//
// The graph must be labeled and undirected; self loops are ignored.
func LabeledVertexCensus(g *graph.Graph) map[LabelVertexType][]int64 {
	if !g.IsLabeled() {
		panic("census: LabeledVertexCensus requires a labeled graph")
	}
	if !g.IsSymmetric() {
		panic("census: LabeledVertexCensus requires an undirected graph")
	}
	work := g.WithoutLoops()
	a := work.ToSparse()
	L := g.NumLabels()
	pi := make([]*sparse.Matrix, L)
	filtered := make([]*sparse.Matrix, L) // A·Π_q (columns filtered)
	for q := 0; q < L; q++ {
		pi[q] = g.LabelFilter(int32(q))
		filtered[q] = a.Mul(pi[q])
	}
	out := map[LabelVertexType][]int64{}
	for _, t := range AllLabelVertexTypes(L) {
		// diag(Π_q1 · (A Π_q3) · (A Π_q2) · (A Π_q1)): the walk leaves a
		// q1 vertex, visits a q3 vertex, then a q2 vertex, and returns.
		// Wait — reading right to left, the first step A Π_q1 filters the
		// *start*; we compose so the intermediate labels are q2 then q3
		// in walk order, matching the enumeration convention (the two are
		// equal counts since {q2,q3} is unordered).
		prod := sparse.Diag3(filtered[t.Q3], filtered[t.Q2], filtered[t.Q1])
		counts := make([]int64, len(prod))
		for v := range prod {
			if g.Label(int32(v)) != t.Q1 {
				continue // Π_q1 projection on both sides
			}
			x := prod[v]
			if t.Q2 == t.Q3 {
				if x%2 != 0 {
					panic("census: odd labeled count for equal pair labels")
				}
				x /= 2
			}
			counts[v] = x
		}
		out[t] = counts
	}
	return out
}

// LabeledVertexCensusEnum is the enumeration-based reference for
// LabeledVertexCensus.
func LabeledVertexCensusEnum(g *graph.Graph) map[LabelVertexType][]int64 {
	if !g.IsLabeled() {
		panic("census: LabeledVertexCensusEnum requires a labeled graph")
	}
	work := g.WithoutLoops()
	n := work.NumVertices()
	out := map[LabelVertexType][]int64{}
	for _, t := range AllLabelVertexTypes(g.NumLabels()) {
		out[t] = make([]int64, n)
	}
	triangle.EachTriangle(work, func(u, v, w int32) {
		for _, p := range [3][3]int32{{u, v, w}, {v, u, w}, {w, u, v}} {
			center, x, y := p[0], p[1], p[2]
			t := NewLabelVertexType(g.Label(center), g.Label(x), g.Label(y))
			out[t][center]++
		}
	})
	return out
}

// LabeledEdgeCensus computes per-edge counts of every labeled triangle
// type via Def. 14: Δ^(q1,q2,q3) = (Π_q2 A Π_q1) ∘ (A Π_q3 A).
func LabeledEdgeCensus(g *graph.Graph) map[LabelEdgeType]*sparse.Matrix {
	if !g.IsLabeled() {
		panic("census: LabeledEdgeCensus requires a labeled graph")
	}
	if !g.IsSymmetric() {
		panic("census: LabeledEdgeCensus requires an undirected graph")
	}
	work := g.WithoutLoops()
	a := work.ToSparse()
	L := g.NumLabels()
	pi := make([]*sparse.Matrix, L)
	for q := 0; q < L; q++ {
		pi[q] = g.LabelFilter(int32(q))
	}
	out := map[LabelEdgeType]*sparse.Matrix{}
	for _, t := range AllLabelEdgeTypes(L) {
		edgePart := pi[t.Q2].Mul(a).Mul(pi[t.Q1])
		wedgePart := a.Mul(pi[t.Q3]).Mul(a)
		out[t] = edgePart.Hadamard(wedgePart)
	}
	return out
}

// LabeledEdgeCensusEnum is the enumeration-based reference for
// LabeledEdgeCensus.
func LabeledEdgeCensusEnum(g *graph.Graph) map[LabelEdgeType]*sparse.Matrix {
	if !g.IsLabeled() {
		panic("census: LabeledEdgeCensusEnum requires a labeled graph")
	}
	work := g.WithoutLoops()
	n := work.NumVertices()
	counts := map[LabelEdgeType]*arcCounts{}
	record := func(i, j, w int32) {
		// Arc (i,j): Q2 = f(i) (row end), Q1 = f(j) (column end),
		// Q3 = f(w).
		t := LabelEdgeType{Q1: g.Label(j), Q2: g.Label(i), Q3: g.Label(w)}
		c := counts[t]
		if c == nil {
			c = newArcCounts(work)
			counts[t] = c
		}
		c.inc(i, j)
	}
	triangle.EachTriangle(work, func(u, v, w int32) {
		record(u, v, w)
		record(v, u, w)
		record(u, w, v)
		record(w, u, v)
		record(v, w, u)
		record(w, v, u)
	})
	out := map[LabelEdgeType]*sparse.Matrix{}
	for _, t := range AllLabelEdgeTypes(g.NumLabels()) {
		if c := counts[t]; c != nil {
			out[t] = c.matrix()
		} else {
			out[t] = sparse.FromTriplets(n, n, nil)
		}
	}
	return out
}
