package kronvalid

// BenchmarkServe measures the generation service's two serving regimes
// over real HTTP (httptest loopback), the numbers the load-test
// harness (cmd/genload) checks in ratio form:
//
//   hot-hit    submit + download of a cache-resident spec — replaying
//              committed shard bytes, no generation
//   cold-miss  submit + completion of a never-seen spec (unique seed
//              per iteration) — full generation, staging, and commit
//
// Rows live in BENCH_baseline.json and are gated by cmd/benchdiff in
// CI alongside the pipeline benchmarks.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"kronvalid/internal/serve"
)

// serveColdSeed survives across benchmark calibration runs within one
// process, so -benchtime 2x -count 3 never resubmits a seed and every
// cold iteration is a genuine miss.
var serveColdSeed atomic.Int64

func serveBenchSubmit(b *testing.B, base, spec string) serve.JobView {
	b.Helper()
	body, _ := json.Marshal(map[string]string{"spec": spec, "format": "binary"})
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		msg, _ := io.ReadAll(resp.Body)
		b.Fatalf("submit: HTTP %d: %s", resp.StatusCode, msg)
	}
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		b.Fatal(err)
	}
	return v
}

func serveBenchWait(b *testing.B, base, id string) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/jobs/" + id + "?wait=5s")
		if err != nil {
			b.Fatal(err)
		}
		var v serve.JobView
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		switch v.State {
		case "done":
			return
		case "failed", "cancelled":
			b.Fatalf("job %s %s: %s", id, v.State, v.Error)
		}
	}
	b.Fatalf("job %s did not finish", id)
}

func BenchmarkServe(b *testing.B) {
	newService := func(b *testing.B) string {
		b.Helper()
		s, err := NewGenService(GenServiceConfig{Dir: b.TempDir()})
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		b.Cleanup(func() {
			ts.Close()
			s.Close()
		})
		return ts.URL
	}

	b.Run("hot-hit", func(b *testing.B) {
		base := newService(b)
		const spec = "rmat:scale=14,edges=262144,seed=7"
		prime := serveBenchSubmit(b, base, spec)
		serveBenchWait(b, base, prime.ID)
		b.ReportAllocs()
		b.ResetTimer()
		var arcs, served int64
		for i := 0; i < b.N; i++ {
			v := serveBenchSubmit(b, base, spec)
			if !v.Cached {
				b.Fatal("hot submission missed the cache")
			}
			resp, err := http.Get(base + v.Result)
			if err != nil {
				b.Fatal(err)
			}
			n, err := io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				b.Fatalf("download: HTTP %d, %v", resp.StatusCode, err)
			}
			served = n
			arcs, _ = strconv.ParseInt(resp.Header.Get("X-Genserve-Arcs"), 10, 64)
		}
		b.SetBytes(served)
		b.ReportMetric(float64(arcs), "arcs/op")
	})

	b.Run("cold-miss", func(b *testing.B) {
		base := newService(b)
		b.ReportAllocs()
		b.ResetTimer()
		var arcs int64
		for i := 0; i < b.N; i++ {
			spec := fmt.Sprintf("rmat:scale=12,edges=65536,seed=%d", 1000+serveColdSeed.Add(1))
			v := serveBenchSubmit(b, base, spec)
			if v.Cached {
				b.Fatal("cold submission hit the cache")
			}
			serveBenchWait(b, base, v.ID)
			final := serveBenchStatus(b, base, v.ID)
			arcs = final.ArcsDone
		}
		b.SetBytes(arcs * 16)
		b.ReportMetric(float64(arcs), "arcs/op")
	})
}

func serveBenchStatus(b *testing.B, base, id string) serve.JobView {
	b.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	var v serve.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		b.Fatal(err)
	}
	return v
}
