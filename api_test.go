package kronvalid

import (
	"bytes"
	"testing"
)

// TestFacadeQuickstart exercises the README quick-start path end to end.
func TestFacadeQuickstart(t *testing.T) {
	a := WebGraph(300, 3, 0.7, 42)
	p := MustProduct(a, a)
	tc, err := VertexParticipation(p)
	if err != nil {
		t.Fatal(err)
	}
	total, err := TriangleTotal(p)
	if err != nil {
		t.Fatal(err)
	}
	ta := CountTriangles(a).Total
	if total != 6*ta*ta {
		t.Fatalf("τ(C) = %d, want %d", total, 6*ta*ta)
	}
	// Spot-verify three egonets against the formula.
	for _, v := range []int64{0, p.NumVertices() / 2, p.NumVertices() - 1} {
		if _, err := VerifyEgonet(p, tc, v, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFacadeGenerators(t *testing.T) {
	if Clique(5).NumEdgesUndirected() != 10 {
		t.Error("Clique")
	}
	if CliqueWithLoops(4).NumLoops() != 4 {
		t.Error("CliqueWithLoops")
	}
	if HubCycle(4).NumVertices() != 5 {
		t.Error("HubCycle")
	}
	if Path(4).NumEdgesUndirected() != 3 || Cycle(4).NumEdgesUndirected() != 4 ||
		Star(4).NumEdgesUndirected() != 3 || CompleteBipartite(2, 3).NumEdgesUndirected() != 6 {
		t.Error("simple families")
	}
	if MaxEdgeTriangles(TriangleLimitedPA(100, 1)) > 1 {
		t.Error("TriangleLimitedPA violated Δ ≤ 1")
	}
	thin := ThinToDeltaOne(ErdosRenyi(30, 0.3, 2), 3)
	if MaxEdgeTriangles(thin) > 1 {
		t.Error("ThinToDeltaOne violated Δ ≤ 1")
	}
	if Graph500RMAT(8, 1).NumVertices() != 256 {
		t.Error("Graph500RMAT")
	}
	if BarabasiAlbert(50, 2, 1).NumVertices() != 50 {
		t.Error("BarabasiAlbert")
	}
}

func TestFacadeStats(t *testing.T) {
	g := HubCycle(4)
	res := CountTriangles(g)
	if res.Total != 4 {
		t.Errorf("τ = %d", res.Total)
	}
	if GlobalClusteringCoefficient(g) <= 0 {
		t.Error("transitivity")
	}
	if len(LocalClusteringCoefficients(g)) != 5 {
		t.Error("local cc length")
	}
	d := DecomposeTruss(g)
	if d.MaxK != 3 {
		t.Errorf("MaxK = %d", d.MaxK)
	}
}

func TestFacadeDirectedAndLabeled(t *testing.T) {
	a := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}, {U: 3, V: 2}}, false)
	b := Clique(3)
	p := MustProduct(a, b)
	ds, err := DirectedCensus(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Vertex) != 15 || len(ds.Edge) != 15 {
		t.Fatalf("census sizes %d/%d", len(ds.Vertex), len(ds.Edge))
	}
	if len(AllDirVertexTypes()) != 15 || len(AllDirEdgeTypes()) != 15 {
		t.Error("type enumerations wrong")
	}
	lab := Clique(3).WithLabels([]int32{0, 1, 2}, 3)
	lp := MustProduct(lab, Clique(3))
	ls, err := LabeledCensus(lp)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls.Vertex) != 3*6 { // |L| * C(|L|+1, 2) = 3 * 6
		t.Errorf("labeled vertex types = %d", len(ls.Vertex))
	}
}

func TestFacadeTrussAndPlan(t *testing.T) {
	a := ErdosRenyi(10, 0.5, 4)
	b := TriangleLimitedPA(8, 5)
	p := MustProduct(a, b)
	pt, err := ProductTrussDecomposition(p)
	if err != nil {
		t.Fatal(err)
	}
	_ = pt.MaxK()
	plan := NewGenPlan(p, 4)
	var sum int64
	for w := 0; w < plan.Workers(); w++ {
		sum += plan.ShardSize(w)
	}
	if sum != p.NumArcs() {
		t.Error("plan does not cover the product")
	}
}

func TestFacadeIO(t *testing.T) {
	g := HubCycle(5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf, g.NumVertices(), false)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Error("round trip failed")
	}
}

func TestFacadeHistograms(t *testing.T) {
	a := WebGraph(200, 3, 0.6, 7)
	b := WebGraph(150, 3, 0.6, 8)
	hC := KronHistogram(NewHistogram(a.Degrees()), NewHistogram(b.Degrees()))
	if hC.Total() != int64(a.NumVertices())*int64(b.NumVertices()) {
		t.Error("product histogram total wrong")
	}
	// §III.A ratio squaring.
	p := MustProduct(a, b)
	maxC, _ := p.MaxDegree()
	rc := float64(maxC) / float64(p.NumVertices())
	ra := MaxDegreeRatio(a.Degrees())
	rb := MaxDegreeRatio(b.Degrees())
	if diff := rc - ra*rb; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("max-degree ratio %v != product %v", rc, ra*rb)
	}
}
