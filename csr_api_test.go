package kronvalid

import (
	"bytes"
	"testing"
)

func csrTestProduct(t *testing.T) *Product {
	t.Helper()
	a := WebGraph(300, 3, 0.7, 11)
	b := HubCycle(5)
	return MustProduct(a, b)
}

// TestBuildCSRMatchesMaterialize pins the tentpole invariant: the
// parallel two-pass CSR build reproduces exactly the adjacency of the
// materialized product.
func TestBuildCSRMatchesMaterialize(t *testing.T) {
	p := csrTestProduct(t)
	g, err := BuildCSR(p, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != p.NumVertices() || g.NumArcs() != p.NumArcs() {
		t.Fatalf("CSR has n=%d m=%d, product says n=%d m=%d",
			g.NumVertices(), g.NumArcs(), p.NumVertices(), p.NumArcs())
	}
	c, err := p.Materialize(1<<22, 1<<26)
	if err != nil {
		t.Fatal(err)
	}
	for v := int64(0); v < p.NumVertices(); v++ {
		want := c.Neighbors(int32(v))
		got := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("vertex %d: %d neighbors, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != int64(want[i]) {
				t.Fatalf("vertex %d neighbor %d: %d, want %d", v, i, got[i], want[i])
			}
		}
		if g.OutDegree(v) != p.OutDegreeRaw(v) {
			t.Fatalf("vertex %d: OutDegree %d, formula %d", v, g.OutDegree(v), p.OutDegreeRaw(v))
		}
	}
}

// TestCSRDeterministicAcrossWorkerCounts is the ingestion-side
// counterpart of the bytewise-identical-sharding guarantee: the CSR
// digest must not depend on the worker count, for either build path.
func TestCSRDeterministicAcrossWorkerCounts(t *testing.T) {
	p := csrTestProduct(t)
	ref, err := BuildCSR(p, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := CSRDigest(ref)
	for _, workers := range []int{1, 4, 8} {
		g, err := BuildCSR(p, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := CSRDigest(g); got != want {
			t.Fatalf("BuildCSR workers=%d: digest %s, want %s", workers, got, want)
		}
		s, err := StreamToCSR(p, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got := CSRDigest(s); got != want {
			t.Fatalf("StreamToCSR workers=%d: digest %s, want %s", workers, got, want)
		}
	}
}

// TestCSRTransposeMatchesInDegreeFormula checks in-degree/transpose
// construction against the Kronecker closed form: the in-degree of
// product vertex (j, l) is indeg_A(j) · indeg_B(l).
func TestCSRTransposeMatchesInDegreeFormula(t *testing.T) {
	// A deliberately asymmetric product so in- and out-degrees differ.
	a := FromEdges(4, []Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 3, V: 0}}, false)
	b := FromEdges(3, []Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 0, V: 2}}, false)
	p := MustProduct(a, b)
	g, err := BuildCSR(p, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inA := make([]int64, a.NumVertices())
	a.EachArc(func(_, v int32) bool { inA[v]++; return true })
	inB := make([]int64, b.NumVertices())
	b.EachArc(func(_, v int32) bool { inB[v]++; return true })

	indeg := g.InDegrees()
	tr := g.Transpose()
	for v := int64(0); v < p.NumVertices(); v++ {
		j, l := p.Factors(v)
		want := inA[j] * inB[l]
		if indeg[v] != want {
			t.Fatalf("InDegrees[%d] = %d, formula %d", v, indeg[v], want)
		}
		if tr.OutDegree(v) != want {
			t.Fatalf("transpose OutDegree(%d) = %d, formula %d", v, tr.OutDegree(v), want)
		}
	}
	if !tr.Transpose().Equal(g) {
		t.Fatal("double transpose differs from the original CSR")
	}
}

// TestCSRSerializationRoundTrip drives the public WriteCSR/ReadCSR pair.
func TestCSRSerializationRoundTrip(t *testing.T) {
	p := csrTestProduct(t)
	g, err := BuildCSR(p, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSR(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) || CSRDigest(back) != CSRDigest(g) {
		t.Fatal("public CSR round trip changed the graph")
	}
}

// TestCSRSinkIngestsWrittenStream closes the loop the subsystem exists
// for: generate → serialize → re-ingest through the one-pass sink →
// identical CSR.
func TestCSRSinkIngestsWrittenStream(t *testing.T) {
	p := csrTestProduct(t)
	g, err := BuildCSR(p, StreamOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := StreamEdges(p, StreamOptions{}, NewBinaryArcSink(&buf)); err != nil {
		t.Fatal(err)
	}
	arcs, err := ReadBinaryArcs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	sink := NewCSRSink(p.NumVertices(), int64(len(arcs)))
	if err := sink.Consume(arcs); err != nil {
		t.Fatal(err)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := sink.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(g) {
		t.Fatal("re-ingested stream differs from the directly built CSR")
	}
}
